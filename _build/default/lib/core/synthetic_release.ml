type t = {
  hypothesis : Pmw_data.Histogram.t;
  synthetic : Pmw_data.Dataset.t option;
  offline : Offline_pmw.report;
}

let release ~config ~dataset ~oracle ~queries ?sample_size ~rng () =
  (match sample_size with
  | Some s when s <= 0 -> invalid_arg "Synthetic_release.release: sample_size must be positive"
  | Some _ | None -> ());
  let offline = Offline_pmw.run ~config ~dataset ~oracle ~queries ~rng () in
  let hypothesis = offline.Offline_pmw.hypothesis in
  let synthetic =
    Option.map (fun n -> Pmw_data.Dataset.of_histogram ~n hypothesis rng) sample_size
  in
  { hypothesis; synthetic; offline }

let workload_errors t dataset queries =
  Array.map (fun q -> Cm_query.err_hypothesis q dataset t.hypothesis) queries
