let check ~n ~k ~beta =
  if n <= 0 then invalid_arg "Transfer: n must be positive";
  if k <= 0 then invalid_arg "Transfer: k must be positive";
  if beta <= 0. || beta >= 1. then invalid_arg "Transfer: beta must lie in (0, 1)"

let sampling_term ~n ~k ~beta =
  check ~n ~k ~beta;
  sqrt (log (2. *. float_of_int k /. beta) /. (2. *. float_of_int n))

let population_error ~sample_alpha ~privacy ~n ~k ~beta =
  check ~n ~k ~beta;
  if sample_alpha < 0. then invalid_arg "Transfer.population_error: negative sample_alpha";
  sample_alpha
  +. (exp privacy.Pmw_dp.Params.eps -. 1.)
  +. (float_of_int k *. privacy.Pmw_dp.Params.delta)
  +. sampling_term ~n ~k ~beta

let overfitting_bound_without_privacy ~n ~k ~beta =
  check ~n ~k ~beta;
  sqrt (float_of_int k /. float_of_int n)
