(** The closed-form bounds of Table 1 and Theorems 3.8 / 4.2 / 4.4 / 4.6,
    with all constants set to 1 (the paper states them as Õ(·)).

    These are the "paper" columns of EXPERIMENTS.md: each function returns
    the dataset size the corresponding bound requires (up to constants and
    polylog factors in 1/δ, 1/β) for target excess risk [alpha] at privacy
    [eps]. Experiments compare the measured error-vs-n scaling against these
    shapes rather than their absolute values. *)

type inputs = {
  alpha : float;  (** target error *)
  eps : float;
  d : int;  (** parameter dimension *)
  log_universe : float;  (** [log |X|] *)
  k : int;  (** number of queries *)
  sigma : float;  (** strong convexity (row 4 only) *)
  scale : float;  (** the family's [S] *)
}

val default : alpha:float -> log_universe:float -> inputs
(** [eps = 1], [d = 1], [k = 1], [sigma = 1], [scale = 1]. *)

(** {1 Table 1, column "single query"} *)

val linear_single : inputs -> float
(** [1/α] (DMNS06). *)

val lipschitz_single : inputs -> float
(** [√d / (α·ε)] (BST14, Theorem 4.1). *)

val uglm_single : inputs -> float
(** [1 / (α²·ε)] (JT14, Theorem 4.3). *)

val strongly_convex_single : inputs -> float
(** [√d / (√σ·α·ε)] (BST14, Theorem 4.5). *)

(** {1 Table 1, column "k queries"} *)

val linear_k : inputs -> float
(** [√(log|X|)·log k / α²] (HR10). *)

val lipschitz_k : inputs -> float
(** [max(√(d·log|X|)/α², log k·√(log|X|)/α²) / ε] (Theorem 4.2, new). *)

val uglm_k : inputs -> float
(** [√(log|X|)/ε · max(1/α, log k) / α²] (Theorem 4.4, new). *)

val strongly_convex_k : inputs -> float
(** [√(log|X|)/ε · max(√d/(√σ·α^{3/2}), log k/α²)] (Theorem 4.6, new). *)

(** {1 Structural quantities} *)

val t_updates : inputs -> float
(** Figure 3's update budget [T = 64·S²·log|X| / α²]. *)

val theorem_3_8_n : inputs -> n_single:float -> delta:float -> beta:float -> float
(** The generic bound of Theorem 3.8 with its printed constants. *)

val composition_k : inputs -> n_single:float -> float
(** Dataset size for the naive baseline: [n_single · √k] (advanced
    composition inflates the per-query budget by [~√k]). *)

val crossover_k : inputs -> float
(** The [k] beyond which PMW beats composition (Section 4.1): the solution
    of [√k = S·√(log|X|)·log k / α], found numerically. *)
