module Point = Pmw_data.Point

let check_order ~dim ~order =
  if order < 1 || order > dim then invalid_arg "Workloads: order must lie in [1, dim]"

(* all sorted index subsets of size [order] from [0, dim) *)
let subsets ~dim ~order =
  let rec go start size =
    if size = 0 then [ [] ]
    else
      List.concat
        (List.init (dim - start) (fun off ->
             let j = start + off in
             List.map (fun rest -> j :: rest) (go (j + 1) (size - 1))))
  in
  go 0 order

let conjunction_name literals =
  String.concat "&" (List.map (fun (j, positive) ->
      Printf.sprintf "x%d%s" j (if positive then ">0" else "<0")) literals)

let conjunction literals =
  Linear_pmw.counting_query ~name:(conjunction_name literals) (fun (x : Point.t) ->
      List.for_all
        (fun (j, positive) ->
          let v = x.Point.features.(j) in
          if positive then v > 0. else v < 0.)
        literals)

let positive_marginals ~dim ~order =
  check_order ~dim ~order;
  List.map (fun idx -> conjunction (List.map (fun j -> (j, true)) idx)) (subsets ~dim ~order)

let marginals_up_to ~dim ~order =
  check_order ~dim ~order;
  List.concat (List.init order (fun o -> positive_marginals ~dim ~order:(o + 1)))

let thresholds ~axis ~cuts =
  List.map
    (fun c ->
      Linear_pmw.counting_query
        ~name:(Printf.sprintf "x%d<=%g" axis c)
        (fun (x : Point.t) -> x.Point.features.(axis) <= c))
    cuts

let label_positive =
  Linear_pmw.counting_query ~name:"label>0" (fun (x : Point.t) -> x.Point.label > 0.)

let random_signed_conjunctions ~dim ~order ~count rng =
  check_order ~dim ~order;
  if count <= 0 then invalid_arg "Workloads.random_signed_conjunctions: count must be positive";
  List.init count (fun _ ->
      let coords = Pmw_rng.Dist.sample_indices_without_replacement ~n:dim ~k:order rng in
      let literals =
        Array.to_list (Array.map (fun j -> (j, Pmw_rng.Rng.bool rng)) coords)
      in
      conjunction literals)

let as_cm_queries ~domain queries =
  List.map
    (fun (q : Linear_pmw.query) ->
      Cm_query.make
        ~loss:
          (Pmw_convex.Losses.mean_estimation
             ~q:(fun x -> q.Linear_pmw.value 0 x)
             ~name:q.Linear_pmw.name)
        ~domain ())
    queries

let evaluate_all queries hist = List.map (fun q -> Linear_pmw.evaluate q hist) queries

let max_abs_error ~truth ~answers =
  List.fold_left2
    (fun acc t a -> if Float.is_nan a then acc else Float.max acc (Float.abs (a -. t)))
    0. truth answers
