(** Online Private Multiplicative Weights for CM queries — the paper's main
    algorithm (Figure 3).

    The mechanism holds the sensitive dataset [D], a public MW hypothesis
    [D̂ᵗ], a sparse-vector instance over the error queries
    [q_j(D) = err_{ℓ_j}(D, D̂ᵗ)] (each [3S/n]-sensitive, Section 3.4.2), and a
    single-query oracle [A']. Each incoming query [ℓ_j] is processed as:

    + compute the public minimizer [θ̂ = argmin_θ ℓ_j(θ; D̂ᵗ)];
    + feed [err_{ℓ_j}(D, D̂ᵗ)] to sparse vector;
    + on ⊥: answer [θ̂] (the hypothesis was already accurate);
    + on ⊤: call [A'(D, ℓ_j)] at [(ε₀, δ₀)] to get [θᵗ], answer [θᵗ], and
      perform the MW update with the dual-certificate vector
      [uᵗ(x) = ⟨θᵗ − θ̂, ∇ℓ_x(θ̂)⟩] (clamped to [±S]).

    Privacy (Theorem 3.9): the SV stream is [(ε/2, δ/2)]-DP and the at most
    [T] oracle calls compose (Theorem 3.10) to [(ε/2, δ/2)]-DP, so the whole
    interaction is [(ε, δ)]-DP. Accuracy is Theorem 3.8. *)

type source =
  | From_hypothesis  (** sparse vector said ⊥ — answered from [D̂ᵗ] *)
  | From_oracle  (** sparse vector said ⊤ — answered by [A'], update done *)

type outcome = {
  theta : Pmw_linalg.Vec.t;
  source : source;
  update_index : int;  (** the paper's [t] after processing this query *)
}

type t

val create :
  config:Config.t ->
  dataset:Pmw_data.Dataset.t ->
  oracle:Pmw_erm.Oracle.t ->
  ?prior:Pmw_data.Histogram.t ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** [prior] warm-starts the hypothesis from a PUBLIC distribution (e.g. a
    previous run's released hypothesis, or public census margins) instead of
    uniform — pure post-processing, no privacy cost, and a good prior means
    fewer updates spent. The convergence guarantee degrades from [log |X|]
    to [max_x log(1/prior(x))], so priors with zero mass are rejected.
    @raise Invalid_argument if the prior is over a different universe or has
    empty support somewhere. *)

val answer : t -> Cm_query.t -> outcome option
(** Process one query; [None] once the mechanism has halted (the SV update
    budget [T] is exhausted or [k] queries were asked).
    @raise Invalid_argument if the query's scale bound [S] exceeds the
    config's (the SV sensitivity guarantee would silently break). *)

val answer_all : t -> Cm_query.t list -> outcome option list
(** Convenience fold of {!answer}. *)

val as_answerer : t -> Cm_query.t -> Pmw_linalg.Vec.t option
(** The mechanism as a bare answering function — the shape
    {!Analyst.run}'s [answer] callback expects. *)

val hypothesis : t -> Pmw_data.Histogram.t
(** The current public hypothesis [D̂ᵗ] — safe to release (it is a
    post-processing of the private answers); this is the synthetic-data
    output mentioned in Section 4.3. *)

val updates : t -> int
val queries_answered : t -> int
val halted : t -> bool
val config : t -> Config.t

val oracle_accountant : t -> Pmw_dp.Accountant.t
(** Ledger of the oracle calls made so far (the SV budget is accounted
    separately, inside {!Pmw_dp.Sparse_vector}). *)
