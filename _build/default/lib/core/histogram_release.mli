(** The classic Laplace-histogram baseline (Dwork et al. 2006).

    Perturb every cell of the empirical histogram with Laplace noise of
    scale [2/(n·ε)] (the normalized histogram has L1 sensitivity [2/n] under
    row replacement, split across cells), clip to non-negative and
    renormalize. [ε]-DP, answers *every* linear query ever after for free
    (post-processing), with per-query error [~√|X|/(n·ε)] in the worst case
    — excellent for small universes, useless for large ones. The a6 release
    ablation pits it against MWEM and linear PMW across universe sizes; it
    is the baseline that motivates the whole query-driven MW line of work. *)

val release : dataset:Pmw_data.Dataset.t -> eps:float -> rng:Pmw_rng.Rng.t -> Pmw_data.Histogram.t
(** @raise Invalid_argument if [eps <= 0]. *)

val answer : Pmw_data.Histogram.t -> Linear_pmw.query -> float
(** Evaluate a linear query on the released histogram (pure post-processing). *)
