module Params = Pmw_dp.Params

type split = Basic | Advanced

let per_query_budget ~split ~k privacy =
  match split with
  | Basic -> Params.split_basic ~count:k privacy
  | Advanced -> Params.split_advanced ~count:k privacy

type t = {
  dataset : Pmw_data.Dataset.t;
  oracle : Pmw_erm.Oracle.t;
  per_query : Params.t;
  k : int;
  solver_iters : int;
  rng : Pmw_rng.Rng.t;
  accountant : Pmw_dp.Accountant.t;
  mutable answered : int;
}

let create ~dataset ~oracle ~privacy ~k ?(split = Advanced) ?(solver_iters = 400) ~rng () =
  if k <= 0 then invalid_arg "Composition.create: k must be positive";
  {
    dataset;
    oracle;
    per_query = per_query_budget ~split ~k privacy;
    k;
    solver_iters;
    rng;
    accountant = Pmw_dp.Accountant.create ();
    answered = 0;
  }

let answer t query =
  if t.answered >= t.k then None
  else begin
    t.answered <- t.answered + 1;
    let request =
      {
        Pmw_erm.Oracle.dataset = t.dataset;
        loss = query.Cm_query.loss;
        domain = query.Cm_query.domain;
        privacy = t.per_query;
        rng = t.rng;
        solver_iters = t.solver_iters;
      }
    in
    let theta = t.oracle.Pmw_erm.Oracle.run request in
    Pmw_dp.Accountant.spend t.accountant t.per_query;
    Some theta
  end

let queries_answered t = t.answered
let accountant t = t.accountant
