module Point = Pmw_data.Point

type comparison = Gt | Ge | Lt | Le

type t =
  | True
  | False
  | Feature of { axis : int; op : comparison; threshold : float }
  | Label of { op : comparison; threshold : float }
  | Not of t
  | And of t * t
  | Or of t * t

let compare_with op v threshold =
  match op with
  | Gt -> v > threshold
  | Ge -> v >= threshold
  | Lt -> v < threshold
  | Le -> v <= threshold

let rec eval t (x : Point.t) =
  match t with
  | True -> true
  | False -> false
  | Feature { axis; op; threshold } ->
      if axis < 0 || axis >= Array.length x.Point.features then
        invalid_arg "Predicate.eval: axis out of range";
      compare_with op x.Point.features.(axis) threshold
  | Label { op; threshold } -> compare_with op x.Point.label threshold
  | Not p -> not (eval p x)
  | And (a, b) -> eval a x && eval b x
  | Or (a, b) -> eval a x || eval b x

let op_string = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Feature { axis; op; threshold } -> Printf.sprintf "x%d %s %g" axis (op_string op) threshold
  | Label { op; threshold } -> Printf.sprintf "label %s %g" (op_string op) threshold
  | Not p -> Printf.sprintf "!(%s)" (to_string p)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)

(* --- parser: tokenize then recursive descent --- *)

type token =
  | Tok_var of int (* axis, -1 for label *)
  | Tok_op of comparison
  | Tok_num of float
  | Tok_and
  | Tok_or
  | Tok_not
  | Tok_lparen
  | Tok_rparen
  | Tok_true
  | Tok_false

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_num_char c = is_digit c || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '&' then (tokens := Tok_and :: !tokens; incr i)
    else if c = '|' then (tokens := Tok_or :: !tokens; incr i)
    else if c = '!' then (tokens := Tok_not :: !tokens; incr i)
    else if c = '(' then (tokens := Tok_lparen :: !tokens; incr i)
    else if c = ')' then (tokens := Tok_rparen :: !tokens; incr i)
    else if c = '>' || c = '<' then begin
      incr i;
      let op =
        if peek () = Some '=' then begin
          incr i;
          if c = '>' then Ge else Le
        end
        else if c = '>' then Gt
        else Lt
      in
      tokens := Tok_op op :: !tokens
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && (is_alpha s.[!i] || is_digit s.[!i]) do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      match word with
      | "label" -> tokens := Tok_var (-1) :: !tokens
      | "true" -> tokens := Tok_true :: !tokens
      | "false" -> tokens := Tok_false :: !tokens
      | _ ->
          if String.length word >= 2 && word.[0] = 'x' then begin
            match int_of_string_opt (String.sub word 1 (String.length word - 1)) with
            | Some axis when axis >= 0 -> tokens := Tok_var axis :: !tokens
            | Some _ | None -> raise (Parse_error (Printf.sprintf "bad variable %S" word))
          end
          else raise (Parse_error (Printf.sprintf "unknown word %S" word))
    end
    else if is_num_char c then begin
      let start = !i in
      while !i < n && is_num_char s.[!i] do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      match float_of_string_opt text with
      | Some v -> tokens := Tok_num v :: !tokens
      | None -> raise (Parse_error (Printf.sprintf "bad number %S" text))
    end
    else raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !tokens

let parse input =
  try
    let tokens = ref (tokenize input) in
    let peek () = match !tokens with [] -> None | t :: _ -> Some t in
    let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
    let expect_atom () =
      match peek () with
      | Some (Tok_var axis) -> begin
          advance ();
          match peek () with
          | Some (Tok_op op) -> begin
              advance ();
              match peek () with
              | Some (Tok_num threshold) ->
                  advance ();
                  if axis = -1 then Label { op; threshold } else Feature { axis; op; threshold }
              | _ -> raise (Parse_error "expected a number after the comparison")
            end
          | _ -> raise (Parse_error "expected a comparison operator after a variable")
        end
      | Some Tok_true ->
          advance ();
          True
      | Some Tok_false ->
          advance ();
          False
      | _ -> raise (Parse_error "expected a variable, 'true', 'false', '!' or '('")
    in
    let rec parse_pred () =
      let left = parse_term () in
      match peek () with
      | Some Tok_or ->
          advance ();
          Or (left, parse_pred ())
      | _ -> left
    and parse_term () =
      let left = parse_factor () in
      match peek () with
      | Some Tok_and ->
          advance ();
          And (left, parse_term ())
      | _ -> left
    and parse_factor () =
      match peek () with
      | Some Tok_not ->
          advance ();
          Not (parse_factor ())
      | Some Tok_lparen -> begin
          advance ();
          let inner = parse_pred () in
          match peek () with
          | Some Tok_rparen ->
              advance ();
              inner
          | _ -> raise (Parse_error "expected ')'")
        end
      | _ -> expect_atom ()
    in
    let result = parse_pred () in
    if !tokens <> [] then raise (Parse_error "trailing tokens after predicate");
    Ok result
  with Parse_error msg -> Error msg

let to_query ?name t =
  let name = match name with Some n -> n | None -> to_string t in
  Linear_pmw.counting_query ~name (eval t)

let vars t =
  let rec collect acc = function
    | True | False -> acc
    | Feature { axis; _ } -> axis :: acc
    | Label _ -> -1 :: acc
    | Not p -> collect acc p
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
  in
  List.sort_uniq compare (collect [] t)
