module Params = Pmw_dp.Params

type t = {
  privacy : Params.t;
  alpha : float;
  beta : float;
  scale : float;
  k : int;
  t_max : int;
  eta : float;
  sv_privacy : Params.t;
  oracle_privacy : Params.t;
  alpha0 : float;
  beta0 : float;
  solver_iters : int;
  log_universe : float;
}

let validate ~privacy ~alpha ~beta ~scale ~k =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Config: alpha must lie in (0, 1)";
  if beta <= 0. || beta >= 1. then invalid_arg "Config: beta must lie in (0, 1)";
  if privacy.Params.eps <= 0. then invalid_arg "Config: eps must be positive";
  if privacy.Params.delta <= 0. then invalid_arg "Config: delta must be positive";
  if scale <= 0. then invalid_arg "Config: scale must be positive";
  if k <= 0 then invalid_arg "Config: k must be positive"

let assemble ~universe ~privacy ~alpha ~beta ~scale ~k ~t_max ~eta ~solver_iters =
  let tf = float_of_int t_max in
  let half = Params.create ~eps:(privacy.Params.eps /. 2.) ~delta:(privacy.Params.delta /. 2.) in
  (* Figure 3 prints eps0 = eps / sqrt(8 T log(4/delta)); composing T such
     calls by Theorem 3.10 yields eps, not the eps/2 the privacy proof
     allocates to the oracle half. We use the corrected split
     eps0 = (eps/2) / sqrt(8 T log(4/delta)) so Theorem 3.9's (eps, delta)
     total actually holds; delta0 = delta/4T is the figure's value. *)
  let oracle_privacy =
    Params.create
      ~eps:(privacy.Params.eps /. (2. *. sqrt (8. *. tf *. log (4. /. privacy.Params.delta))))
      ~delta:(privacy.Params.delta /. (4. *. tf))
  in
  {
    privacy;
    alpha;
    beta;
    scale;
    k;
    t_max;
    eta;
    sv_privacy = half;
    oracle_privacy;
    alpha0 = alpha /. 4.;
    beta0 = beta /. (2. *. tf);
    solver_iters;
    log_universe = Pmw_data.Universe.log_size universe;
  }

let theory ~universe ~privacy ~alpha ~beta ~scale ~k ?(solver_iters = 400) () =
  validate ~privacy ~alpha ~beta ~scale ~k;
  let log_x = Pmw_data.Universe.log_size universe in
  let t_max =
    Int.max 1 (int_of_float (ceil (64. *. scale *. scale *. log_x /. (alpha *. alpha))))
  in
  let eta = sqrt (log_x /. float_of_int t_max) in
  assemble ~universe ~privacy ~alpha ~beta ~scale ~k ~t_max ~eta ~solver_iters

let practical ~universe ~privacy ~alpha ~beta ~scale ~k ~t_max ?eta ?(solver_iters = 400) () =
  validate ~privacy ~alpha ~beta ~scale ~k;
  if t_max <= 0 then invalid_arg "Config.practical: t_max must be positive";
  let eta =
    match eta with
    | Some e ->
        if e <= 0. then invalid_arg "Config.practical: eta must be positive";
        e
    | None -> sqrt (Pmw_data.Universe.log_size universe /. float_of_int t_max)
  in
  assemble ~universe ~privacy ~alpha ~beta ~scale ~k ~t_max ~eta ~solver_iters

let theorem_3_8_n t ~n_single =
  let open Params in
  let bound =
    4096. *. t.scale *. t.scale
    *. sqrt (t.log_universe *. log (4. /. t.privacy.delta))
    *. log (8. *. float_of_int t.k /. t.beta)
    /. (t.privacy.eps *. t.alpha *. t.alpha)
  in
  Float.max n_single bound

let pp fmt t =
  Format.fprintf fmt
    "@[<v>online PMW config:@,  privacy %a  alpha=%g beta=%g S=%g k=%d@,  T=%d eta=%g@,  SV %a  oracle %a (alpha0=%g beta0=%g)@]"
    Params.pp t.privacy t.alpha t.beta t.scale t.k t.t_max t.eta Params.pp t.sv_privacy Params.pp
    t.oracle_privacy t.alpha0 t.beta0
