(** A shared privacy-budget manager for sessions that run several mechanisms
    against the same dataset.

    In practice one dataset serves many analyses (the paper's opening
    motivation); each mechanism must draw its [(ε, δ)] from a common pot or
    the guarantees silently compose past the intended total. A [Budget.t]
    holds the pot, hands out slices, refuses when exhausted, and keeps the
    ledger — so "are we still within (1, 1e-6)?" has one authoritative
    answer. Basic composition is used for soundness (slices are typically
    few and heterogeneous; the fine-grained composition happens inside each
    mechanism). *)

type t

val create : Pmw_dp.Params.t -> t
(** A fresh pot. *)

val total : t -> Pmw_dp.Params.t
val spent : t -> Pmw_dp.Params.t
val remaining : t -> Pmw_dp.Params.t

val request : t -> Pmw_dp.Params.t -> (Pmw_dp.Params.t, string) result
(** [request t slice] debits [slice] if it fits in the remainder, returning
    it for the caller to hand to a mechanism; [Error] (with a human-readable
    reason) otherwise — nothing is debited on refusal. *)

val request_fraction : t -> float -> (Pmw_dp.Params.t, string) result
(** Debit the given fraction of the ORIGINAL total (e.g. [0.5] twice
    exhausts the pot). @raise Invalid_argument unless the fraction lies in
    (0, 1]. *)

val exhausted : ?tolerance:float -> t -> bool
(** No meaningful ε remains (default tolerance [1e-12]). *)

val history : t -> Pmw_dp.Params.t list
(** Granted slices, oldest first. *)
