type record = {
  index : int;
  query : Cm_query.t;
  answer : Pmw_linalg.Vec.t option;
  error : float option;
}

type t = { name : string; next : round:int -> history:record list -> Cm_query.t option }

let of_list ~name queries =
  let arr = Array.of_list queries in
  {
    name;
    next = (fun ~round ~history:_ -> if round < Array.length arr then Some arr.(round) else None);
  }

let cycle ~name queries ~k =
  let arr = Array.of_list queries in
  if Array.length arr = 0 then invalid_arg "Analyst.cycle: no queries";
  {
    name;
    next =
      (fun ~round ~history:_ ->
        if round < k then Some arr.(round mod Array.length arr) else None);
  }

let adaptive ~name next = { name; next }

let random_from_pool ~name pool ~k rng =
  let arr = Array.of_list pool in
  if Array.length arr = 0 then invalid_arg "Analyst.random_from_pool: empty pool";
  {
    name;
    next =
      (fun ~round ~history:_ ->
        if round < k then Some arr.(Pmw_rng.Rng.int rng (Array.length arr)) else None);
  }

let greedy_hardest ~name pool ~k =
  let arr = Array.of_list pool in
  if Array.length arr = 0 then invalid_arg "Analyst.greedy_hardest: empty pool";
  {
    name;
    next =
      (fun ~round ~history ->
        if round >= k then None
        else if round < Array.length arr then Some arr.(round)
        else begin
          (* find the recorded query with the largest error; identify pool
             membership by name (pool queries have distinct names) *)
          let worst = ref None in
          List.iter
            (fun r ->
              match r.error with
              | Some e -> (
                  match !worst with
                  | Some (_, e') when e' >= e -> ()
                  | Some _ | None -> worst := Some (r.query, e))
              | None -> ())
            history;
          match !worst with
          | Some (q, _) -> Some q
          | None -> Some arr.(round mod Array.length arr)
        end);
  }

let run ~analyst ~k ~answer ~dataset ?(solver_iters = 400) () =
  let rec loop round history =
    if round >= k then List.rev history
    else
      match analyst.next ~round ~history with
      | None -> List.rev history
      | Some query ->
          let theta = answer query in
          let error =
            Option.map (fun th -> Cm_query.err_answer ~iters:solver_iters query dataset th) theta
          in
          let record = { index = round; query; answer = theta; error } in
          loop (round + 1) (record :: history)
  in
  loop 0 []

let estimate_accuracy ~trials ~game ~alpha =
  if trials <= 0 then invalid_arg "Analyst.estimate_accuracy: trials must be positive";
  let wins = ref 0 in
  for seed = 1 to trials do
    let records = game ~seed in
    let ok =
      List.for_all
        (fun r -> match r.error with Some e -> e <= alpha | None -> false)
        records
    in
    if ok && records <> [] then incr wins
  done;
  float_of_int !wins /. float_of_int trials

let max_error records =
  List.fold_left
    (fun acc r -> match r.error with Some e -> Float.max acc e | None -> acc)
    0. records

let mean_error records =
  let total, count =
    List.fold_left
      (fun (t, c) r -> match r.error with Some e -> (t +. e, c + 1) | None -> (t, c))
      (0., 0) records
  in
  if count = 0 then 0. else total /. float_of_int count

let answered records =
  List.length (List.filter (fun r -> Option.is_some r.answer) records)
