module Histogram = Pmw_data.Histogram

let release ~dataset ~eps ~rng =
  if eps <= 0. then invalid_arg "Histogram_release.release: eps must be positive";
  let truth = Pmw_data.Dataset.histogram dataset in
  let n = float_of_int (Pmw_data.Dataset.size dataset) in
  let scale = 2. /. (n *. eps) in
  let noisy =
    Array.map
      (fun w -> Float.max 0. (w +. Pmw_rng.Dist.laplace ~scale rng))
      (Histogram.weights truth)
  in
  (* All-zero after clipping is astronomically unlikely but guard anyway. *)
  let total = Pmw_linalg.Vec.kahan_sum noisy in
  let universe = Histogram.universe truth in
  if total <= 0. then Histogram.uniform universe else Histogram.of_weights universe noisy

let answer hist q = Linear_pmw.evaluate q hist
