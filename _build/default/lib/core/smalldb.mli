(** The SmallDB mechanism (Blum, Ligett & Roth, STOC 2008) — the first
    exponentially-many-queries mechanism, cited in the paper's introduction
    as the opening of the line of work PMW optimizes.

    For a workload [Q] of linear queries, there always exists a database of
    only [m = O(log|Q|/α²)] rows whose answers are α-close to [D]'s
    (subsampling argument); SmallDB runs the exponential mechanism over ALL
    [|X|^m] small databases, scored by the worst-case workload error. Pure
    [ε]-DP and non-interactive, but the candidate space is enormous — the
    reason it is a theoretical landmark rather than a practical tool, which
    this implementation makes concrete: it is only runnable for tiny [|X|]
    and [m] (we cap the candidate count), exactly the contrast with MWEM /
    PMW that the a6 ablation shows. *)

type report = {
  rows : int array;  (** universe indices of the chosen small database *)
  histogram : Pmw_data.Histogram.t;  (** its empirical distribution *)
  answers : float array;  (** workload answers from the small database *)
  candidates : int;  (** number of candidate databases scored *)
}

val candidate_count : universe_size:int -> m:int -> int
(** [|X|^m] (saturating at [max_int]). *)

val suggested_m : k:int -> alpha:float -> int
(** The theory's [⌈log k / α²⌉] (capped at 1 from below). *)

val run :
  dataset:Pmw_data.Dataset.t ->
  queries:Linear_pmw.query array ->
  eps:float ->
  m:int ->
  ?max_candidates:int ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  report
(** Enumerate all multisets of size [m] over the universe (equivalently all
    sorted index tuples), score each by [-max_j |q_j(small) − q_j(D)|], and
    select with the exponential mechanism at sensitivity [1/n].
    @raise Invalid_argument on an empty workload, non-positive [eps]/[m], or
    when the candidate count exceeds [max_candidates] (default [200_000]) —
    the honest failure mode of SmallDB. *)
