(** A small predicate language for counting queries.

    Linear queries in the paper are "what fraction of rows satisfy p?"; this
    module gives [p] a first-class syntax: boolean combinations of
    per-coordinate thresholds and label tests, with evaluation, a
    pretty-printer, and a parser so workloads can be written on the command
    line or in files, e.g. ["x0 > 0 & (x1 <= 0.5 | !label > 0)"].

    Grammar (whitespace-insensitive):
    {v
      pred  ::= term ('|' term)*          (or, lowest precedence)
      term  ::= factor ('&' factor)*      (and)
      factor::= '!' factor | '(' pred ')' | atom
      atom  ::= var op number | 'true' | 'false'
      var   ::= 'x' digits | 'label'
      op    ::= '>' | '>=' | '<' | '<='
    v} *)

type comparison = Gt | Ge | Lt | Le

type t =
  | True
  | False
  | Feature of { axis : int; op : comparison; threshold : float }
  | Label of { op : comparison; threshold : float }
  | Not of t
  | And of t * t
  | Or of t * t

val eval : t -> Pmw_data.Point.t -> bool
(** @raise Invalid_argument when a referenced axis exceeds the point's
    dimension. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)

val parse : string -> (t, string) result
(** Parse the grammar above; [Error msg] pinpoints the offending token. *)

val to_query : ?name:string -> t -> Linear_pmw.query
(** The counting query of the predicate (default name: {!to_string}). *)

val vars : t -> int list
(** Feature axes mentioned, sorted, deduplicated ([-1] stands for the
    label). *)
