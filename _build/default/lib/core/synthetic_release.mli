(** Workload-driven synthetic data release.

    Section 4.3 remarks that the algorithm "can be modified to output a
    synthetic dataset (namely, the final histogram D̂ᵗ)". This module
    packages that observation: run the offline PMW mechanism against a
    workload of CM queries, release the final hypothesis, and optionally
    sample a concrete record-level synthetic dataset from it. Both outputs
    are differentially private (post-processing), may be published, and
    answer the workload's queries nearly as well as the sensitive data. *)

type t = {
  hypothesis : Pmw_data.Histogram.t;  (** the private distribution over X *)
  synthetic : Pmw_data.Dataset.t option;  (** sampled rows, if requested *)
  offline : Offline_pmw.report;  (** the generating run's bookkeeping *)
}

val release :
  config:Config.t ->
  dataset:Pmw_data.Dataset.t ->
  oracle:Pmw_erm.Oracle.t ->
  queries:Cm_query.t array ->
  ?sample_size:int ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** Fit the hypothesis to the workload with {!Offline_pmw.run}; when
    [sample_size] is given also draw that many iid rows from it.
    @raise Invalid_argument on an empty workload or non-positive
    [sample_size]. *)

val workload_errors : t -> Pmw_data.Dataset.t -> Cm_query.t array -> float array
(** For evaluation only (touches the sensitive data): the excess risk on the
    true dataset of each query's minimizer computed on the released
    hypothesis — Definition 2.3 per query. *)
