(** Parameter derivation for the online PMW mechanism (the header of
    Figure 3).

    [theory] computes the paper's settings verbatim:
    {[
      T   = 64·S²·log|X| / α²          η  = √(log|X| / T)
      ε₀  = ε / √(8·T·log(4/δ))        δ₀ = δ / 4T
      α₀  = α / 4                      β₀ = β / 2T
    ]}
    and hands the sparse-vector algorithm half of the overall budget
    ([SV(T, k, α, ε/2, δ/2)]).

    The worst-case constants make [T] and the Theorem 3.8 dataset bound
    astronomically large for laptop-scale [α]; [practical] keeps the same
    structure (budget halves, advanced-composition splits, the [α/4] oracle
    target) but lets the experiment harness pick [T] directly. DESIGN.md's
    parameterization note records this; both paths are tested. *)

type t = {
  privacy : Pmw_dp.Params.t;  (** overall [(ε, δ)] *)
  alpha : float;  (** target excess risk [α] *)
  beta : float;  (** failure probability [β] *)
  scale : float;  (** the family's scale bound [S] *)
  k : int;  (** maximum number of queries *)
  t_max : int;  (** MW update budget [T] *)
  eta : float;  (** MW learning rate [η] *)
  sv_privacy : Pmw_dp.Params.t;  (** budget handed to sparse vector *)
  oracle_privacy : Pmw_dp.Params.t;  (** per-call [(ε₀, δ₀)] for [A'] *)
  alpha0 : float;  (** oracle accuracy target [α₀ = α/4] *)
  beta0 : float;
  solver_iters : int;  (** iteration budget for public argmin computations *)
  log_universe : float;  (** [log|X|] — kept for the Theorem 3.8 bound *)
}

val theory :
  universe:Pmw_data.Universe.t ->
  privacy:Pmw_dp.Params.t ->
  alpha:float ->
  beta:float ->
  scale:float ->
  k:int ->
  ?solver_iters:int ->
  unit ->
  t
(** Figure 3's settings. @raise Invalid_argument on out-of-range parameters
    ([alpha], [beta] in (0,1); [delta > 0]; [scale > 0]; [k > 0]). *)

val practical :
  universe:Pmw_data.Universe.t ->
  privacy:Pmw_dp.Params.t ->
  alpha:float ->
  beta:float ->
  scale:float ->
  k:int ->
  t_max:int ->
  ?eta:float ->
  ?solver_iters:int ->
  unit ->
  t
(** Same structure with an explicit update budget [T] (and optionally [η];
    default [√(log|X|/T)]). *)

val theorem_3_8_n : t -> n_single:float -> float
(** The dataset-size requirement of Theorem 3.8:
    [max(n', 4096·S²·√(log|X|·log(4/δ))·log(8k/β) / (ε·α²))], where [n'] is
    the oracle's own requirement. *)

val pp : Format.formatter -> t -> unit
