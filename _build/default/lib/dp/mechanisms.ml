module Dist = Pmw_rng.Dist

let check_eps name eps = if eps <= 0. then invalid_arg (name ^ ": eps must be positive")

let check_sens name s = if s < 0. then invalid_arg (name ^ ": sensitivity must be non-negative")

let laplace ~eps ~sensitivity value rng =
  check_eps "Mechanisms.laplace" eps;
  check_sens "Mechanisms.laplace" sensitivity;
  value +. Dist.laplace ~scale:(sensitivity /. eps) rng

let gaussian_sigma ~eps ~delta ~sensitivity =
  check_eps "Mechanisms.gaussian" eps;
  if delta <= 0. then invalid_arg "Mechanisms.gaussian: delta must be positive";
  check_sens "Mechanisms.gaussian" sensitivity;
  sensitivity *. sqrt (2. *. log (1.25 /. delta)) /. eps

let gaussian ~eps ~delta ~sensitivity value rng =
  let sigma = gaussian_sigma ~eps ~delta ~sensitivity in
  value +. Dist.gaussian ~sigma rng

let gaussian_vector ~eps ~delta ~l2_sensitivity value rng =
  let sigma = gaussian_sigma ~eps ~delta ~sensitivity:l2_sensitivity in
  Array.map (fun x -> x +. Dist.gaussian ~sigma rng) value

let exponential ~eps ~sensitivity ~scores rng =
  check_eps "Mechanisms.exponential" eps;
  check_sens "Mechanisms.exponential" sensitivity;
  let n = Array.length scores in
  if n = 0 then invalid_arg "Mechanisms.exponential: empty scores";
  (* Gumbel-max trick: argmax_i (eps * score_i / (2 sens) + Gumbel_i) is an
     exact sample from the exponential-mechanism distribution. *)
  let coeff = if sensitivity = 0. then 0. else eps /. (2. *. sensitivity) in
  let best = ref 0 and best_v = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = (coeff *. scores.(i)) +. Dist.gumbel rng in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let report_noisy_max ~eps ~sensitivity ~scores rng =
  check_eps "Mechanisms.report_noisy_max" eps;
  check_sens "Mechanisms.report_noisy_max" sensitivity;
  let n = Array.length scores in
  if n = 0 then invalid_arg "Mechanisms.report_noisy_max: empty scores";
  let scale = 2. *. sensitivity /. eps in
  let best = ref 0 and best_v = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = scores.(i) +. Dist.laplace ~scale rng in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let permute_and_flip ~eps ~sensitivity ~scores rng =
  check_eps "Mechanisms.permute_and_flip" eps;
  check_sens "Mechanisms.permute_and_flip" sensitivity;
  let n = Array.length scores in
  if n = 0 then invalid_arg "Mechanisms.permute_and_flip: empty scores";
  let max_score = Array.fold_left Float.max neg_infinity scores in
  let coeff = if sensitivity = 0. then infinity else eps /. (2. *. sensitivity) in
  let order = Array.init n (fun i -> i) in
  Dist.shuffle order rng;
  (* The loop accepts with probability exp(coeff * (score - max)) <= 1 and is
     guaranteed to terminate: at least one candidate has score = max and
     acceptance probability 1. *)
  let rec visit k =
    let i = order.(k mod n) in
    let p = if coeff = infinity then (if scores.(i) = max_score then 1. else 0.)
            else exp (coeff *. (scores.(i) -. max_score)) in
    if Dist.bernoulli ~p rng then i else visit (k + 1)
  in
  visit 0

let randomized_response ~eps truth rng =
  check_eps "Mechanisms.randomized_response" eps;
  let p_truth = exp eps /. (1. +. exp eps) in
  if Dist.bernoulli ~p:p_truth rng then truth else not truth
