(** Rényi differential privacy accountant (Mironov 2017) — an extension
    beyond the paper's toolkit (which predates RDP).

    Tracks the Rényi divergence bound [ε(α)] at a grid of orders α; RDP
    composes by addition order-wise, and converts to [(ε, δ)]-DP via
    [ε = min_α ε(α) + log(1/δ)/(α − 1)]. On Gaussian-heavy workloads this is
    tighter than both Theorem 3.10 and the simple zCDP conversion; the a3
    ablation bench compares all four accountants on identical event
    streams. *)

type t

val create : ?orders:float array -> unit -> t
(** Default orders: [{1.25, 1.5, 2, 3, 4, 8, 16, 32, 64, 256}]. Every order
    must exceed 1. *)

val orders : t -> float array

val spend_gaussian : t -> sigma:float -> sensitivity:float -> unit
(** Gaussian mechanism: [ε(α) = α·Δ²/(2σ²)]. *)

val spend_pure : t -> eps:float -> unit
(** A pure [ε]-DP mechanism: [ε(α) <= min(ε, α·ε²/2)] (the zCDP implication
    of Bun–Steinke 2016 combined with the trivial bound). *)

val spend_rdp : t -> (float -> float) -> unit
(** Arbitrary mechanism given by its RDP curve [α ↦ ε(α)]. *)

val epsilon : t -> delta:float -> float
(** The tightest [(ε, δ)] conversion over the tracked orders.
    @raise Invalid_argument unless [0 < delta < 1]. *)

val count : t -> int
(** Number of recorded events. *)
