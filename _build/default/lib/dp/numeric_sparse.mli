(** NumericSparse (Dwork–Roth, Algorithm 3): sparse vector that also
    releases a noisy numeric answer for every above-threshold query.

    The paper's Figure 3 only needs the boolean variant ({!Sparse_vector})
    because the oracle [A'] supplies the numeric answer; the linear-query
    mechanism (HR10) and many downstream uses want the numeric value too.
    Budget: a [1 − value_fraction] share runs the boolean sparse vector; the
    rest is advanced-composed across the at most [t_max] released values. *)

type answer =
  | Below  (** the query looked below threshold; no value released *)
  | Above of float  (** above threshold; the released noisy value *)

type t

val create :
  t_max:int ->
  k:int ->
  threshold:float ->
  privacy:Params.t ->
  sensitivity:float ->
  ?value_fraction:float ->
  rng:Pmw_rng.Rng.t ->
  unit ->
  t
(** Defaults: [value_fraction = 1/3] (mirroring Dwork–Roth's 8/9–1/9 split
    toward the sparse side being the accuracy bottleneck).
    @raise Invalid_argument on parameters out of range (see
    {!Sparse_vector.create}) or [value_fraction] outside (0, 1). *)

val query : t -> float -> answer option
(** Feed the true query value; [None] once halted. *)

val halted : t -> bool
val tops_used : t -> int
