lib/dp/accountant.mli: Params
