lib/dp/params.ml: Float Format List
