lib/dp/sparse_vector.mli: Params Pmw_rng
