lib/dp/mechanisms.mli: Pmw_linalg Pmw_rng
