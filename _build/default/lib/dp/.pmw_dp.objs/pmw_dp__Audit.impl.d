lib/dp/audit.ml: Float Hashtbl Int Mechanisms Option Pmw_rng
