lib/dp/params.mli: Format
