lib/dp/rdp.mli:
