lib/dp/analytic_gaussian.mli: Pmw_linalg Pmw_rng
