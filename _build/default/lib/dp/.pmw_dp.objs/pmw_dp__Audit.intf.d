lib/dp/audit.mli:
