lib/dp/sparse_vector.ml: Float Params Pmw_rng
