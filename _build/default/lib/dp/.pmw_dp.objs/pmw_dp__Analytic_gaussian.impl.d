lib/dp/analytic_gaussian.ml: Array Float Pmw_linalg Pmw_rng
