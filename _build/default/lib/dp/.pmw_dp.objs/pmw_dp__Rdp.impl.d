lib/dp/rdp.ml: Array Float
