lib/dp/numeric_sparse.ml: Mechanisms Params Pmw_rng Sparse_vector
