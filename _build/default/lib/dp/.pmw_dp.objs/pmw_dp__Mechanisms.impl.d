lib/dp/mechanisms.ml: Array Float Pmw_rng
