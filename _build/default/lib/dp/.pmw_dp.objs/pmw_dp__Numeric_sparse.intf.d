lib/dp/numeric_sparse.mli: Params Pmw_rng
