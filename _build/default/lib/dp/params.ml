type t = { eps : float; delta : float }

let create ~eps ~delta =
  if eps < 0. || Float.is_nan eps then invalid_arg "Params.create: eps must be non-negative";
  if delta < 0. || delta > 1. || Float.is_nan delta then
    invalid_arg "Params.create: delta must lie in [0, 1]";
  { eps; delta }

let pure eps = create ~eps ~delta:0.

let pp fmt t = Format.fprintf fmt "(ε=%g, δ=%g)" t.eps t.delta

let compose_basic ts =
  List.fold_left
    (fun acc t -> create ~eps:(acc.eps +. t.eps) ~delta:(Float.min 1. (acc.delta +. t.delta)))
    (pure 0.) ts

let compose_advanced ~count ~slack t =
  if count <= 0 then invalid_arg "Params.compose_advanced: count must be positive";
  if slack <= 0. || slack >= 1. then invalid_arg "Params.compose_advanced: slack must lie in (0,1)";
  let c = float_of_int count in
  let eps = (sqrt (2. *. c *. log (1. /. slack)) *. t.eps) +. (2. *. c *. t.eps *. t.eps) in
  create ~eps ~delta:(Float.min 1. (slack +. (c *. t.delta)))

let split_advanced ~count t =
  if count <= 0 then invalid_arg "Params.split_advanced: count must be positive";
  if t.delta <= 0. then invalid_arg "Params.split_advanced: requires delta > 0";
  let c = float_of_int count in
  create
    ~eps:(t.eps /. sqrt (8. *. c *. log (2. /. t.delta)))
    ~delta:(t.delta /. (2. *. c))

let split_basic ~count t =
  if count <= 0 then invalid_arg "Params.split_basic: count must be positive";
  let c = float_of_int count in
  create ~eps:(t.eps /. c) ~delta:(t.delta /. c)

let check_advanced_split ~count ~budget ~per_call =
  let composed = compose_advanced ~count ~slack:(budget.delta /. 2.) per_call in
  composed.eps <= budget.eps +. 1e-12 && composed.delta <= budget.delta +. 1e-12
