(** Differential-privacy parameters [(ε, δ)] and their composition algebra.

    Implements Definition 2.1 bookkeeping and the two composition theorems
    the paper uses: basic (sequential) composition and the strong composition
    theorem of Dwork–Rothblum–Vadhan (Theorem 3.10 in the paper, verbatim). *)

type t = { eps : float; delta : float }

val create : eps:float -> delta:float -> t
(** @raise Invalid_argument if [eps < 0] or [delta] outside [\[0, 1\]]. *)

val pure : float -> t
(** [(ε, 0)]. *)

val pp : Format.formatter -> t -> unit

val compose_basic : t list -> t
(** Sequential composition: parameters add up. *)

val compose_advanced : count:int -> slack:float -> t -> t
(** Theorem 3.10 (DRV10): the [count]-fold adaptive composition of
    [(ε₀, δ₀)]-DP algorithms is [(ε, δ' + count·δ₀)]-DP for
    [ε = √(2·count·ln(1/δ')) ε₀ + 2·count·ε₀²] with slack [δ' = slack].
    @raise Invalid_argument if [count <= 0] or [slack] outside (0, 1). *)

val split_advanced : count:int -> t -> t
(** The paper's inverse of strong composition (Section 3.4.1): the per-call
    budget [(ε₀, δ₀)] with [ε₀ = ε / √(8·count·ln(2/δ))] and
    [δ₀ = δ / (2·count)] such that [count]-fold composition yields at most
    [(ε, δ)]-DP. @raise Invalid_argument if [count <= 0] or [delta = 0]. *)

val split_basic : count:int -> t -> t
(** [(ε/count, δ/count)] — the naive per-call budget. *)

val check_advanced_split : count:int -> budget:t -> per_call:t -> bool
(** Verifies (by plugging into {!compose_advanced} with slack [budget.delta/2])
    that [count] calls at [per_call] stay within [budget]. Used by tests. *)
