(** The standard building-block mechanisms.

    Each takes the query's global sensitivity explicitly; the caller is
    responsible for that bound being correct (the library property-tests the
    sensitivities it derives, e.g. the [3S/n] bound of Section 3.4.2). *)

val laplace :
  eps:float -> sensitivity:float -> float -> Pmw_rng.Rng.t -> float
(** Laplace mechanism: add [Lap(sensitivity/eps)] noise. [(ε, 0)]-DP.
    @raise Invalid_argument if [eps <= 0] or [sensitivity < 0]. *)

val gaussian :
  eps:float -> delta:float -> sensitivity:float -> float -> Pmw_rng.Rng.t -> float
(** Gaussian mechanism with the classical calibration
    [σ = sensitivity · √(2 ln(1.25/δ)) / ε]. [(ε, δ)]-DP for [ε <= 1].
    @raise Invalid_argument if [eps <= 0], [delta <= 0] or [sensitivity < 0]. *)

val gaussian_sigma : eps:float -> delta:float -> sensitivity:float -> float
(** The [σ] used by {!gaussian} — exposed for noise-scale assertions and for
    mechanisms that add vector-valued noise of the same scale. *)

val gaussian_vector :
  eps:float -> delta:float -> l2_sensitivity:float -> Pmw_linalg.Vec.t -> Pmw_rng.Rng.t -> Pmw_linalg.Vec.t
(** Spherical Gaussian noise calibrated to the query's L2 sensitivity —
    the vector mechanism used by noisy SGD and output perturbation. *)

val exponential :
  eps:float -> sensitivity:float -> scores:float array -> Pmw_rng.Rng.t -> int
(** Exponential mechanism over a finite candidate set: returns index [i] with
    probability proportional to [exp(ε·scores(i) / (2·sensitivity))].
    Implemented exactly via the Gumbel-max trick (no normalization needed),
    so it is numerically safe for large score ranges. [(ε, 0)]-DP.
    @raise Invalid_argument on an empty score array. *)

val report_noisy_max :
  eps:float -> sensitivity:float -> scores:float array -> Pmw_rng.Rng.t -> int
(** Argmax of [scores(i) + Lap(2·sensitivity/ε)]. [(ε, 0)]-DP. *)

val permute_and_flip :
  eps:float -> sensitivity:float -> scores:float array -> Pmw_rng.Rng.t -> int
(** Permute-and-flip (McKenna & Sheldon, NeurIPS 2020) — an extension beyond
    the paper's toolkit: visit candidates in random order and accept
    candidate [i] with probability [exp(ε·(scores(i) − max)/2Δ)]. Same
    [(ε, 0)]-DP guarantee as {!exponential} but stochastically dominates it
    in utility (never selects worse, often better); the selection ablation
    in the test suite verifies the domination empirically. *)

val randomized_response : eps:float -> bool -> Pmw_rng.Rng.t -> bool
(** Tell the truth with probability [e^ε / (1 + e^ε)]. *)
