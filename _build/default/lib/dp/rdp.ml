type t = { orders : float array; totals : float array; mutable events : int }

let default_orders = [| 1.25; 1.5; 2.; 3.; 4.; 8.; 16.; 32.; 64.; 256. |]

let create ?(orders = default_orders) () =
  if Array.length orders = 0 then invalid_arg "Rdp.create: no orders";
  Array.iter (fun a -> if a <= 1. then invalid_arg "Rdp.create: orders must exceed 1") orders;
  { orders = Array.copy orders; totals = Array.make (Array.length orders) 0.; events = 0 }

let orders t = Array.copy t.orders

let spend_rdp t curve =
  Array.iteri (fun i a -> t.totals.(i) <- t.totals.(i) +. curve a) t.orders;
  t.events <- t.events + 1

let spend_gaussian t ~sigma ~sensitivity =
  if sigma <= 0. then invalid_arg "Rdp.spend_gaussian: sigma must be positive";
  if sensitivity < 0. then invalid_arg "Rdp.spend_gaussian: negative sensitivity";
  let rho = sensitivity *. sensitivity /. (2. *. sigma *. sigma) in
  spend_rdp t (fun a -> a *. rho)

let spend_pure t ~eps =
  if eps < 0. then invalid_arg "Rdp.spend_pure: negative eps";
  spend_rdp t (fun a -> Float.min eps (a *. eps *. eps /. 2.))

let epsilon t ~delta =
  if delta <= 0. || delta >= 1. then invalid_arg "Rdp.epsilon: delta must lie in (0, 1)";
  let best = ref infinity in
  Array.iteri
    (fun i a ->
      let e = t.totals.(i) +. (log (1. /. delta) /. (a -. 1.)) in
      if e < !best then best := e)
    t.orders;
  !best

let count t = t.events
