module Special = Pmw_linalg.Special

let phi x = Special.gaussian_cdf ~mu:0. ~sigma:1. x

let delta_of_sigma ~eps ~sensitivity ~sigma =
  if sigma <= 0. then invalid_arg "Analytic_gaussian.delta_of_sigma: sigma must be positive";
  if sensitivity = 0. then 0.
  else
    let a = sensitivity /. (2. *. sigma) in
    let b = eps *. sigma /. sensitivity in
    phi (a -. b) -. (exp eps *. phi (-.a -. b))

let sigma ~eps ~delta ~sensitivity =
  if eps <= 0. then invalid_arg "Analytic_gaussian.sigma: eps must be positive";
  if delta <= 0. || delta >= 1. then
    invalid_arg "Analytic_gaussian.sigma: delta must lie in (0, 1)";
  if sensitivity < 0. then invalid_arg "Analytic_gaussian.sigma: negative sensitivity";
  if sensitivity = 0. then 0.
  else begin
    (* delta_of_sigma is monotone decreasing in sigma; bisect on
       f(s) = delta_of_sigma(s) - delta, which crosses from + to -. *)
    let f s = delta_of_sigma ~eps ~sensitivity ~sigma:s -. delta in
    let lo =
      let rec shrink s = if f s > 0. || s < 1e-12 then s else shrink (s /. 2.) in
      shrink sensitivity
    in
    let hi =
      let rec grow s = if f s < 0. || s > 1e15 then s else grow (s *. 2.) in
      grow (Float.max sensitivity lo)
    in
    Special.binary_search_root ~iters:200 ~lo ~hi f
  end

let mechanism ~eps ~delta ~sensitivity value rng =
  let s = sigma ~eps ~delta ~sensitivity in
  value +. Pmw_rng.Dist.gaussian ~sigma:s rng

let mechanism_vector ~eps ~delta ~l2_sensitivity value rng =
  let s = sigma ~eps ~delta ~sensitivity:l2_sensitivity in
  Array.map (fun x -> x +. Pmw_rng.Dist.gaussian ~sigma:s rng) value
