(** Analytic Gaussian mechanism (Balle & Wang, ICML 2018) — an extension
    beyond the paper's toolkit.

    The classical calibration [σ = Δ√(2 ln(1.25/δ))/ε] used by
    {!Mechanisms.gaussian} is loose (and only valid for ε <= 1). The
    analytic calibration computes the smallest σ satisfying the exact
    characterization of the Gaussian mechanism:

    [Φ(Δ/2σ − εσ/Δ) − e^ε · Φ(−Δ/2σ − εσ/Δ) <= δ]

    by bisection, which is valid for every ε > 0 and strictly smaller than
    the classical σ. The accounting ablation bench (a3) quantifies the
    end-to-end accuracy this buys the single-query oracles. *)

val delta_of_sigma : eps:float -> sensitivity:float -> sigma:float -> float
(** The exact δ achieved by noise level [sigma] at privacy [eps] — the
    left-hand side above. Monotone decreasing in [sigma]. *)

val sigma : eps:float -> delta:float -> sensitivity:float -> float
(** The minimal σ making the mechanism [(ε, δ)]-DP, to relative precision
    ~1e-12. @raise Invalid_argument on non-positive [eps], [delta] or
    negative [sensitivity]. *)

val mechanism :
  eps:float -> delta:float -> sensitivity:float -> float -> Pmw_rng.Rng.t -> float
(** Add analytically calibrated Gaussian noise to a value. *)

val mechanism_vector :
  eps:float -> delta:float -> l2_sensitivity:float -> Pmw_linalg.Vec.t -> Pmw_rng.Rng.t -> Pmw_linalg.Vec.t
