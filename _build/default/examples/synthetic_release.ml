(* Private synthetic data release (Section 4.3's remark, productized).

   Fit the multiplicative-weights hypothesis to a workload of CM queries with
   the offline mechanism, release (a) the hypothesis distribution and (b) a
   record-level synthetic dataset sampled from it — both differentially
   private by post-processing — then evaluate how well the synthetic data
   answers the workload AND queries that were never in the workload
   (out-of-workload utility is where synthetic data degrades; seeing that
   honestly is the point of this example).

   Run: dune exec examples/synthetic_release.exe *)

module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Histogram = Pmw_data.Histogram
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Cm_query = Pmw_core.Cm_query
module Release = Pmw_core.Synthetic_release

let () =
  let rng = Pmw_rng.Rng.create ~seed:17 () in
  let universe = Universe.regression_grid ~d:2 ~levels:7 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.6; -0.3 |] ~noise:0.15 ~n:250_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let workload =
    [|
      Cm_query.make ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
      Cm_query.make ~loss:(Losses.quantile ~tau:0.5 ()) ~domain ();
      Cm_query.make ~loss:(Losses.feature_mask [| true; false |] (Losses.squared ())) ~domain ();
    |]
  in
  let held_out =
    [|
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
      Cm_query.make ~loss:(Losses.quantile ~tau:0.9 ()) ~domain ();
      Cm_query.make ~loss:(Losses.epsilon_insensitive ~epsilon:0.2 ()) ~domain ();
    |]
  in
  let config =
    Pmw_core.Config.practical ~universe
      ~privacy:(Pmw_dp.Params.create ~eps:1.0 ~delta:1e-6)
      ~alpha:0.05 ~beta:0.05 ~scale:2. ~k:(Array.length workload) ~t_max:20 ~solver_iters:200 ()
  in
  let release =
    Release.release ~config ~dataset ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~queries:workload
      ~sample_size:50_000 ~rng ()
  in
  Format.printf "offline PMW used %d/%d update rounds; released |X|=%d hypothesis + %d synthetic rows@."
    release.Release.offline.Pmw_core.Offline_pmw.rounds_used config.Pmw_core.Config.t_max
    (Universe.size universe)
    (match release.Release.synthetic with Some s -> Dataset.size s | None -> 0);

  let show title queries =
    Format.printf "@.%s@." title;
    let errs = Release.workload_errors release dataset queries in
    Array.iteri
      (fun i e ->
        Format.printf "  %-28s excess risk via synthetic data: %.4f@."
          queries.(i).Cm_query.name e)
      errs;
    let worst = Array.fold_left Float.max 0. errs in
    Format.printf "  worst: %.4f@." worst
  in
  show "workload queries (fitted):" workload;
  show "held-out queries (never shown to the mechanism):" held_out;

  (* distributional quality of the release *)
  let truth = Dataset.histogram dataset in
  Format.printf "@.L1(hypothesis, true histogram) = %.4f; entropy %.3f vs true %.3f@."
    (Histogram.l1_dist release.Release.hypothesis truth)
    (Histogram.entropy release.Release.hypothesis)
    (Histogram.entropy truth)
