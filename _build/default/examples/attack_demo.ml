(* Why the noise is necessary: attacks against overly accurate releases.

   Uses the umbrella [Pmw] module throughout (the one-stop API). Two demos:

   1. Dinur-Nissim reconstruction: a secret bit per row, k = 4n subset-sum
      queries. Exact answers -> the secret is fully reconstructed. The same
      queries answered with the Laplace noise our mechanisms actually add ->
      recovery collapses to coin flipping.

   2. Tracing: released exact feature means let an attacker test whether a
      target record was in the dataset; the eps=1 noisy release does not.

   Run: dune exec examples/attack_demo.exe *)

let () =
  let rng = Pmw.Rng.create ~seed:99 () in

  (* --- 1. reconstruction --- *)
  let n = 128 in
  let k = 4 * n in
  Format.printf "Dinur-Nissim reconstruction: n=%d rows, k=%d subset-sum queries@." n k;
  let attack ~label ~noise =
    let rate = Pmw.Reconstruction.attack_success ~n ~k ~noise ~seed:1 in
    Format.printf "  %-36s recovered %.1f%% of the secret@." label (100. *. rate)
  in
  attack ~label:"exact answers" ~noise:(fun _ -> 0.);
  let eps = 1. in
  let dp_scale = float_of_int k /. (float_of_int n *. eps) in
  let noise_rng = Pmw.Rng.split rng in
  attack
    ~label:(Format.asprintf "eps=%g Laplace (k-fold composition)" eps)
    ~noise:(fun _ -> Pmw.Dist.laplace ~scale:dp_scale noise_rng);

  (* --- 2. tracing --- *)
  let universe = Pmw.Universe.hypercube ~d:12 () in
  let population = Pmw.Synth.zipf_histogram ~universe ~s:0.5 rng in
  Format.printf "@.Tracing attack on released feature means (n=30 per dataset):@.";
  let exact =
    Pmw.Tracing.attack ~release:Pmw.Tracing.mean_release ~population ~n:30 ~trials:300 rng
  in
  Format.printf "  exact means:      advantage %.3f@." exact.Pmw.Tracing.advantage;
  let dp =
    Pmw.Tracing.attack
      ~release:(fun ds -> Pmw.Tracing.noisy_mean_release ~eps:1. ~rng ds)
      ~population ~n:30 ~trials:300 rng
  in
  Format.printf "  eps=1 noisy means: advantage %.3f@." dp.Pmw.Tracing.advantage;

  (* --- the bridge to the paper --- *)
  Format.printf
    "@.This is the KRS13 connection of Section 1.2: sufficiently accurate answers to@.\
     enough queries are incompatible with privacy, so every mechanism in this library@.\
     (sparse vector, the oracles, PMW itself) injects noise at least at the scale that@.\
     defeats these attacks — and the paper's error lower bounds are tight because of them.@."
