examples/adaptive_logistic.mli:
