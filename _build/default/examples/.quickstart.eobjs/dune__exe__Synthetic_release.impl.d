examples/synthetic_release.ml: Array Float Format Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng
