examples/attack_demo.ml: Format Pmw
