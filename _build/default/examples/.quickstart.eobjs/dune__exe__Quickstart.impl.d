examples/quickstart.ml: Format List Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_rng
