examples/linear_queries.mli:
