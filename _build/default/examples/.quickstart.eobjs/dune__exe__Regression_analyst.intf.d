examples/regression_analyst.mli:
