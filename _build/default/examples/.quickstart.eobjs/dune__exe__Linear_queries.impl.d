examples/linear_queries.ml: Array Float Format List Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng Printf
