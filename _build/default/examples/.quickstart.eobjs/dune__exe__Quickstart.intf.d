examples/quickstart.mli:
