examples/synthetic_release.mli:
