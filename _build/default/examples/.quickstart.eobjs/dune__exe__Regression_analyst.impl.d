examples/regression_analyst.ml: Format List Option Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_rng
