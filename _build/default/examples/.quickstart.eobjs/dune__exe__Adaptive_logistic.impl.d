examples/adaptive_logistic.ml: Array Float Format List Option Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_rng
