(* The benchmark harness.

   Two layers:
   1. The experiment harness (lib/experiments) — regenerates every table and
      figure of the paper's evaluation (Table 1 rows 1-4 and the F1-F5 prose
      claims). Run all of them (default) or one by id.
   2. Bechamel micro-benchmarks of the mechanism's inner operations (one per
      reproduced table/figure, timing the kernel that experiment stresses).

   Usage:
     dune exec bench/main.exe              # micro-benchmarks + all experiments
     dune exec bench/main.exe -- list      # list experiment ids
     dune exec bench/main.exe -- t1-uglm   # one experiment
     dune exec bench/main.exe -- micro     # micro-benchmarks only *)

open Bechamel
open Toolkit
module Common = Pmw_experiments.Common
module Registry = Pmw_experiments.Registry
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Rng = Pmw_rng.Rng

(* --- bechamel micro-benchmarks: the kernels behind each experiment --- *)

let micro_tests () =
  let rng = Rng.create ~seed:1 () in
  let universe = Universe.hypercube ~d:10 () in
  let hist = Pmw_data.Synth.zipf_histogram ~universe ~s:1. rng in
  let mw = Pmw_mw.Mw.create ~universe ~eta:0.3 in
  let sv =
    Pmw_dp.Sparse_vector.create ~t_max:1_000_000 ~k:max_int ~threshold:1.
      ~privacy:(Pmw_dp.Params.create ~eps:1. ~delta:1e-6)
      ~sensitivity:0.001 ~rng
  in
  let scores = Array.init 1024 (fun i -> float_of_int (i mod 17)) in
  let workload = Common.Workload.regression ~d:2 ~levels:5 () in
  let dataset = workload.Common.Workload.sample ~n:10_000 (Rng.create ~seed:2 ()) in
  let query = List.hd workload.Common.Workload.queries in
  let dhat = Histogram.uniform workload.Common.Workload.universe in
  [
    (* T1.linear: the linear-PMW kernel = one histogram inner product *)
    Test.make ~name:"t1-linear/query-eval"
      (Staged.stage (fun () ->
           Histogram.expect hist (fun _ x -> if x.Pmw_data.Point.features.(0) > 0. then 1. else 0.)));
    (* T1.lipschitz & friends: one public argmin over the hypothesis *)
    Test.make ~name:"t1-lipschitz/public-argmin"
      (Staged.stage (fun () -> Pmw_core.Cm_query.minimize_on_histogram ~iters:50 query dhat));
    (* T1.uglm: one noisy-GD oracle call *)
    Test.make ~name:"t1-uglm/oracle-call"
      (Staged.stage
         (let oracle = Pmw_erm.Oracles.noisy_gd ~max_steps:50 () in
          let req =
            {
              Pmw_erm.Oracle.dataset;
              loss = query.Pmw_core.Cm_query.loss;
              domain = query.Pmw_core.Cm_query.domain;
              privacy = Pmw_dp.Params.create ~eps:0.1 ~delta:1e-7;
              rng;
              solver_iters = 50;
            }
          in
          fun () -> oracle.Pmw_erm.Oracle.run req));
    (* T1.strong: the exponential mechanism selection used offline *)
    Test.make ~name:"t1-strong/exp-mechanism"
      (Staged.stage (fun () ->
           Pmw_dp.Mechanisms.exponential ~eps:1. ~sensitivity:0.01 ~scores rng));
    (* F2/F5: one MW update over |X| = 1024 *)
    Test.make ~name:"f2-f5/mw-update"
      (Staged.stage (fun () -> Pmw_mw.Mw.update mw ~loss:(fun i -> float_of_int (i land 7))));
    (* F1/F4: one sparse-vector query *)
    Test.make ~name:"f1-f4/sv-query" (Staged.stage (fun () -> Pmw_dp.Sparse_vector.query sv 0.2));
    (* F3: one histogram normalization (softmax over |X|) *)
    Test.make ~name:"f3/distribution" (Staged.stage (fun () -> Pmw_mw.Mw.distribution mw));
    (* A3: one analytic Gaussian calibration (bisection) *)
    Test.make ~name:"a3/analytic-sigma"
      (Staged.stage (fun () ->
           Pmw_dp.Analytic_gaussian.sigma ~eps:0.7 ~delta:1e-6 ~sensitivity:1.));
    (* A6: one MWEM round (measurement + update) over |X| = 1024 *)
    Test.make ~name:"a6/mwem-round"
      (Staged.stage
         (let ds = Pmw_data.Dataset.of_histogram ~n:5_000 hist (Rng.create ~seed:3 ()) in
          let queries =
            Array.of_list (Pmw_core.Workloads.positive_marginals ~dim:10 ~order:1)
          in
          fun () ->
            Pmw_core.Mwem.run ~dataset:ds ~queries ~eps:1. ~rounds:1 ~replays:1
              ~rng:(Rng.create ~seed:4 ())
              ()));
    (* F7: one least-squares reconstruction decode (n = 64, k = 128) *)
    Test.make ~name:"f7/reconstruction-decode"
      (Staged.stage
         (let rng7 = Rng.create ~seed:5 () in
          let secret = Array.init 64 (fun i -> i mod 3 = 0) in
          let qs =
            Pmw_attacks.Reconstruction.random_subset_queries ~n:64 ~k:128 ~secret
              ~noise:(fun _ -> 0.)
              rng7
          in
          fun () -> Pmw_attacks.Reconstruction.reconstruct qs));
    (* A2 flavor: permute-and-flip selection over 1024 candidates *)
    Test.make ~name:"a2/permute-and-flip"
      (Staged.stage (fun () ->
           Pmw_dp.Mechanisms.permute_and_flip ~eps:1. ~sensitivity:0.01 ~scores rng));
  ]

let run_micro () =
  let tests = Test.make_grouped ~name:"pmw" ~fmt:"%s/%s" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ t ] -> rows := (name, t) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  Printf.printf "\n== micro-benchmarks (ns per call, OLS on monotonic clock) ==\n";
  List.iter (fun (name, t) -> Printf.printf "%-32s %12.0f ns\n" name t) rows;
  Printf.printf "%!"

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
      List.iter
        (fun e ->
          Printf.printf "%-14s %s\n" e.Registry.name e.Registry.description)
        Registry.all
  | _ :: "micro" :: _ -> run_micro ()
  | _ :: name :: _ -> (
      match Registry.find name with
      | Some e -> e.Registry.run ()
      | None ->
          Printf.eprintf "unknown experiment %S; try 'list'\n" name;
          exit 1)
  | _ ->
      run_micro ();
      Registry.run_all ()
