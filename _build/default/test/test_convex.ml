(* Tests for Pmw_convex: domains & projections, the loss library (gradients
   validated against finite differences, Lipschitz and strong-convexity
   claims checked empirically), objectives, and every solver. *)

module Vec = Pmw_linalg.Vec
module Point = Pmw_data.Point
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Dataset = Pmw_data.Dataset
module Domain = Pmw_convex.Domain
module Loss = Pmw_convex.Loss
module Losses = Pmw_convex.Losses
module Objective = Pmw_convex.Objective
module Solve = Pmw_convex.Solve
module Rng = Pmw_rng.Rng

let checkf tol = Alcotest.(check (float tol))
let rng = Rng.create ~seed:61 ()

(* --- Domain --- *)

let test_domain_basics () =
  let ball = Domain.unit_ball ~dim:3 in
  checkf 1e-12 "ball diameter" 2. (Domain.diameter ball);
  Alcotest.(check bool) "contains center" true (Domain.contains ball (Domain.center ball));
  let box = Domain.box ~dim:2 ~lo:(-1.) ~hi:3. in
  checkf 1e-12 "box diameter" (4. *. sqrt 2.) (Domain.diameter box);
  Alcotest.(check (array (float 1e-12))) "box center" [| 1.; 1. |] (Domain.center box);
  let sx = Domain.simplex ~dim:4 in
  Alcotest.(check bool) "simplex center feasible" true (Domain.contains sx (Domain.center sx))

let test_domain_projection_feasible () =
  List.iter
    (fun domain ->
      for _ = 1 to 50 do
        let raw = Pmw_rng.Dist.gaussian_vector ~dim:(Domain.dim domain) ~sigma:5. rng in
        let p = Domain.project domain raw in
        Alcotest.(check bool) "projected point feasible" true (Domain.contains ~tol:1e-6 domain p)
      done)
    [ Domain.unit_ball ~dim:3; Domain.box ~dim:3 ~lo:(-0.5) ~hi:0.5; Domain.simplex ~dim:3 ]

let test_domain_random_point_feasible () =
  List.iter
    (fun domain ->
      for _ = 1 to 50 do
        let p = Domain.random_point domain rng in
        Alcotest.(check bool) "random point feasible" true (Domain.contains ~tol:1e-6 domain p)
      done)
    [ Domain.unit_ball ~dim:4; Domain.box ~dim:2 ~lo:0. ~hi:1.; Domain.simplex ~dim:5 ]

let test_domain_validation () =
  Alcotest.check_raises "dim" (Invalid_argument "Domain.make: dim must be positive") (fun () ->
      ignore (Domain.l2_ball ~dim:0 ~radius:1.));
  Alcotest.check_raises "radius" (Invalid_argument "Domain.make: negative radius") (fun () ->
      ignore (Domain.l2_ball ~dim:1 ~radius:(-1.)))

(* --- losses: gradient checks against finite differences --- *)

let random_labeled_point ~dim rng =
  let x = Pmw_data.Synth.random_unit_vector ~dim rng in
  let label = if Rng.bool rng then 1. else -1. in
  Point.make ~label x

let random_regression_point ~dim rng =
  let x = Pmw_data.Synth.random_unit_vector ~dim rng in
  Point.make ~label:(Rng.uniform rng ~lo:(-1.) ~hi:1.) x

let gradient_check ~name ~smooth_only (loss : Loss.t) point_gen =
  let dim = 3 in
  for _ = 1 to 30 do
    let theta = Vec.scale 0.7 (Pmw_data.Synth.random_unit_vector ~dim rng) in
    let x = point_gen ~dim rng in
    let analytic = loss.Loss.grad theta x in
    let numeric = Loss.numeric_grad loss theta x in
    (* at kinks of non-smooth losses finite differences disagree; skip those *)
    let at_kink = smooth_only && Vec.dist2 analytic numeric > 1e-3 in
    if not at_kink then
      Alcotest.(check bool)
        (name ^ " gradient matches finite differences")
        true
        (Vec.dist2 analytic numeric < 1e-4)
  done

let test_gradients_smooth () =
  gradient_check ~name:"squared" ~smooth_only:false (Losses.squared ()) random_regression_point;
  gradient_check ~name:"logistic" ~smooth_only:false (Losses.logistic ()) random_labeled_point;
  gradient_check ~name:"squared_margin" ~smooth_only:false (Losses.squared_margin ())
    random_labeled_point;
  gradient_check ~name:"huber" ~smooth_only:false (Losses.huber ~delta:0.5 ())
    random_regression_point

let test_gradients_nonsmooth () =
  gradient_check ~name:"hinge" ~smooth_only:true (Losses.hinge ()) random_labeled_point;
  gradient_check ~name:"absolute" ~smooth_only:true (Losses.absolute ()) random_regression_point;
  gradient_check ~name:"quantile" ~smooth_only:true (Losses.quantile ~tau:0.3 ())
    random_regression_point

let test_lipschitz_bounds_hold () =
  (* For random theta in the unit ball and universe-style points, the gradient
     norm must respect the declared constant. *)
  let losses =
    [
      Losses.squared ();
      Losses.logistic ();
      Losses.hinge ();
      Losses.huber ~delta:0.5 ();
      Losses.absolute ();
      Losses.quantile ~tau:0.8 ();
      Losses.squared_margin ();
    ]
  in
  List.iter
    (fun (loss : Loss.t) ->
      for _ = 1 to 100 do
        let theta = Vec.scale (Rng.float rng) (Pmw_data.Synth.random_unit_vector ~dim:4 rng) in
        let x = random_regression_point ~dim:4 rng in
        let g = Vec.norm2 (loss.Loss.grad theta x) in
        Alcotest.(check bool)
          (loss.Loss.name ^ " gradient bounded by declared Lipschitz constant")
          true
          (g <= loss.Loss.lipschitz +. 1e-9)
      done)
    losses

let test_convexity_along_segments () =
  (* l((a+b)/2) <= (l(a)+l(b))/2 for every loss in the library. *)
  let losses =
    [
      Losses.squared ();
      Losses.logistic ();
      Losses.hinge ();
      Losses.huber ();
      Losses.absolute ();
      Losses.quantile ~tau:0.25 ();
      Losses.squared_margin ();
    ]
  in
  List.iter
    (fun (loss : Loss.t) ->
      for _ = 1 to 50 do
        let a = Pmw_data.Synth.random_unit_vector ~dim:3 rng in
        let b = Pmw_data.Synth.random_unit_vector ~dim:3 rng in
        let x = random_regression_point ~dim:3 rng in
        let mid = Vec.scale 0.5 (Vec.add a b) in
        Alcotest.(check bool)
          (loss.Loss.name ^ " midpoint convexity")
          true
          (loss.Loss.value mid x
          <= (0.5 *. (loss.Loss.value a x +. loss.Loss.value b x)) +. 1e-9)
      done)
    losses

let test_new_losses_gradients () =
  gradient_check ~name:"smoothed_hinge" ~smooth_only:false (Losses.smoothed_hinge ())
    random_labeled_point;
  gradient_check ~name:"epsilon_insensitive" ~smooth_only:true
    (Losses.epsilon_insensitive ~epsilon:0.2 ())
    random_regression_point;
  (* poisson uses non-negative count labels *)
  let count_point ~dim rng =
    let x = Pmw_data.Synth.random_unit_vector ~dim rng in
    Point.make ~label:(float_of_int (Rng.int rng 5)) x
  in
  gradient_check ~name:"poisson" ~smooth_only:true (Losses.poisson ()) count_point

let test_smoothed_hinge_approximates_hinge () =
  let smooth = Losses.smoothed_hinge ~gamma:0.01 () in
  let hinge = Losses.hinge () in
  for _ = 1 to 50 do
    let theta = Pmw_data.Synth.random_unit_vector ~dim:3 rng in
    let x = random_labeled_point ~dim:3 rng in
    Alcotest.(check bool) "within gamma" true
      (Float.abs (smooth.Loss.value theta x -. hinge.Loss.value theta x) <= 0.011)
  done

let test_epsilon_insensitive_dead_zone () =
  let loss = Losses.epsilon_insensitive ~epsilon:0.5 () in
  let x = Point.make ~label:0.3 [| 1.; 0. |] in
  (* residual 0.1 - 0.3 = -0.2, within the eps=0.5 tube: zero loss and grad *)
  checkf 1e-12 "zero in tube" 0. (loss.Loss.value [| 0.1; 0. |] x);
  Alcotest.(check (array (float 1e-12))) "zero grad in tube" [| 0.; 0. |]
    (loss.Loss.grad [| 0.1; 0. |] x)

let test_poisson_convex_and_clamped () =
  let loss = Losses.poisson ~max_rate:4. () in
  let x = Point.make ~label:2. [| 1.; 0. |] in
  (* convexity along the first axis including across the clamp point *)
  for _ = 1 to 50 do
    let a = [| Rng.uniform rng ~lo:(-3.) ~hi:3.; 0. |] in
    let b = [| Rng.uniform rng ~lo:(-3.) ~hi:3.; 0. |] in
    let mid = Vec.scale 0.5 (Vec.add a b) in
    Alcotest.(check bool) "midpoint convexity across clamp" true
      (loss.Loss.value mid x <= (0.5 *. (loss.Loss.value a x +. loss.Loss.value b x)) +. 1e-9)
  done;
  (* gradient magnitude bounded despite exp link *)
  let g = loss.Loss.grad [| 10.; 0. |] x in
  Alcotest.(check bool) "clamped gradient" true (Vec.norm2 g <= loss.Loss.lipschitz +. 1e-9)

let test_strong_convexity_of_prox_quadratic () =
  let sigma = 2.5 in
  let loss = Losses.prox_quadratic ~sigma ~target:(fun x -> x.Point.features) ~dim:2 () in
  checkf 1e-12 "declared sigma" sigma loss.Loss.strong_convexity;
  (* l(b) >= l(a) + <grad a, b-a> + sigma/2 ||b-a||^2 *)
  for _ = 1 to 50 do
    let a = Pmw_data.Synth.random_unit_vector ~dim:2 rng in
    let b = Pmw_data.Synth.random_unit_vector ~dim:2 rng in
    let x = Point.make (Pmw_data.Synth.random_unit_vector ~dim:2 rng) in
    let lhs = loss.Loss.value b x in
    let d = Vec.sub b a in
    let rhs =
      loss.Loss.value a x +. Vec.dot (loss.Loss.grad a x) d
      +. (0.5 *. sigma *. Vec.norm2_sq d)
    in
    Alcotest.(check bool) "strong convexity inequality" true (lhs >= rhs -. 1e-9)
  done

let test_ridge_adds_strong_convexity () =
  let base = Losses.logistic () in
  let ridged = Losses.ridge ~lambda:0.3 ~radius:1. base in
  checkf 1e-12 "sigma" 0.3 ridged.Loss.strong_convexity;
  Alcotest.(check bool) "lipschitz grew" true (ridged.Loss.lipschitz > base.Loss.lipschitz)

let test_mean_estimation_minimizer () =
  (* The exact minimizer of the mean-estimation CM loss is the query answer. *)
  let u = Universe.hypercube ~d:3 () in
  let q (x : Point.t) = if x.Point.features.(0) > 0. then 1. else 0. in
  let loss = Losses.mean_estimation ~q ~name:"x0>0" in
  let h = Histogram.of_weights u [| 4.; 1.; 1.; 1.; 1.; 0.; 0.; 0. |] in
  let truth = Histogram.expect h (fun _ x -> q x) in
  let domain = Domain.interval ~lo:0. ~hi:1. in
  let res = Solve.minimize_loss_on_histogram loss domain h in
  checkf 1e-6 "minimizer = <q, D>" truth res.Solve.theta.(0)

let test_feature_mask () =
  let loss = Losses.feature_mask [| true; false |] (Losses.squared ~normalize:false ()) in
  let x = Point.make ~label:0. [| 1.; 1. |] in
  let theta = [| 0.; 1. |] in
  (* masked x = (1, 0) so <theta, x> = 0 and loss = (0-0)^2 = 0 *)
  checkf 1e-12 "mask removes coordinate" 0. (loss.Loss.value theta x);
  Alcotest.check_raises "mask dim" (Invalid_argument "Losses.feature_mask: mask dimension mismatch")
    (fun () -> ignore (loss.Loss.value theta (Point.make [| 1. |])))

let test_glm_structure () =
  let logistic = Losses.logistic () in
  Alcotest.(check bool) "logistic is a GLM" true (Option.is_some logistic.Loss.glm);
  let squared = Losses.squared () in
  Alcotest.(check bool) "squared is not (our encoding)" true (Option.is_none squared.Loss.glm);
  (* GLM value/grad consistency: value = link(<theta, phi>) *)
  match logistic.Loss.glm with
  | None -> Alcotest.fail "unreachable"
  | Some g ->
      let x = random_labeled_point ~dim:3 rng in
      let theta = Pmw_data.Synth.random_unit_vector ~dim:3 rng in
      checkf 1e-9 "glm decomposition"
        (g.Loss.link (Vec.dot theta (g.Loss.feature x)))
        (logistic.Loss.value theta x)

let test_scale_parameter () =
  let loss = Losses.logistic () in
  let domain = Domain.unit_ball ~dim:3 in
  checkf 1e-12 "S = diam * L" 2. (Loss.scale_parameter loss domain)

(* --- objectives --- *)

let test_objective_histogram_vs_dataset () =
  let u = Universe.regression_grid ~d:2 ~levels:3 ~label_levels:3 () in
  let ds = Dataset.create u [| 0; 5; 5; 17; 26 |] in
  let loss = Losses.squared () in
  let o_ds = Objective.of_dataset loss ds ~dim:2 in
  let o_h = Objective.of_histogram loss (Dataset.histogram ds) ~dim:2 in
  let theta = [| 0.3; -0.2 |] in
  checkf 1e-12 "values agree" (o_h.Objective.f theta) (o_ds.Objective.f theta);
  Alcotest.(check (array (float 1e-12)))
    "gradients agree"
    (o_h.Objective.grad theta)
    (o_ds.Objective.grad theta)

let test_objective_add_ridge () =
  let u = Universe.hypercube ~d:2 () in
  let o = Objective.of_histogram (Losses.logistic ()) (Histogram.uniform u) ~dim:2 in
  let r = Objective.add_ridge o ~lambda:2. in
  let theta = [| 1.; 0. |] in
  checkf 1e-12 "value gains lambda/2 |theta|^2" (o.Objective.f theta +. 1.) (r.Objective.f theta)

(* --- solvers --- *)

(* A known quadratic: f(t) = ||t - c||^2 with optimum c (interior or not). *)
let quadratic c =
  Objective.of_fn ~dim:(Array.length c)
    ~f:(fun t ->
      let d = Vec.sub t c in
      Vec.norm2_sq d)
    ~grad:(fun t -> Vec.scale 2. (Vec.sub t c))

let test_solvers_interior_optimum () =
  let c = [| 0.3; -0.2 |] in
  let domain = Domain.unit_ball ~dim:2 in
  let obj = quadratic c in
  List.iter
    (fun (name, report) ->
      Alcotest.(check bool) (name ^ " reaches interior optimum") true
        (Vec.dist2 report.Solve.theta c < 0.02))
    [
      ("subgradient", Solve.projected_subgradient ~iters:2000 ~lipschitz:4. domain obj);
      ("strongly-convex", Solve.strongly_convex_subgradient ~iters:2000 ~sigma:2. domain obj);
      ("armijo", Solve.gradient_descent_armijo ~iters:200 domain obj);
      ("frank-wolfe", Solve.frank_wolfe ~iters:2000 ~radius:1. obj);
      ("minimize", Solve.minimize ~iters:500 ~lipschitz:4. ~strong_convexity:2. domain obj);
    ]

let test_accelerated_gradient () =
  let c = [| 0.3; -0.2 |] in
  let domain = Domain.unit_ball ~dim:2 in
  let obj = quadratic c in
  let acc = Solve.accelerated_gradient ~iters:100 ~smoothness:2. domain obj in
  Alcotest.(check bool) "reaches optimum" true (Vec.dist2 acc.Solve.theta c < 1e-4);
  (* acceleration wins at equal (small) budgets on an ill-conditioned
     quadratic: f(t) = (t1 - 1)^2 + 25 (t2 - 1)^2 over a large box *)
  let ill =
    Pmw_convex.Objective.of_fn ~dim:2
      ~f:(fun t -> ((t.(0) -. 1.) ** 2.) +. (25. *. ((t.(1) -. 1.) ** 2.)))
      ~grad:(fun t -> [| 2. *. (t.(0) -. 1.); 50. *. (t.(1) -. 1.) |])
  in
  let big_box = Domain.box ~dim:2 ~lo:(-10.) ~hi:10. in
  let iters = 60 in
  let plain = Solve.projected_subgradient ~iters ~lipschitz:60. big_box ill in
  let fast = Solve.accelerated_gradient ~iters ~smoothness:50. big_box ill in
  Alcotest.(check bool)
    (Printf.sprintf "accelerated %.2e <= subgradient %.2e" fast.Solve.value plain.Solve.value)
    true
    (fast.Solve.value <= plain.Solve.value +. 1e-12)

let test_solvers_boundary_optimum () =
  (* optimum outside the ball: projection of c onto the sphere. *)
  let c = [| 3.; 4. |] in
  let expected = [| 0.6; 0.8 |] in
  let domain = Domain.unit_ball ~dim:2 in
  let obj = quadratic c in
  let r = Solve.minimize ~iters:800 ~lipschitz:12. ~strong_convexity:2. domain obj in
  Alcotest.(check bool) "lands on the boundary projection" true
    (Vec.dist2 r.Solve.theta expected < 0.02)

let test_minimize_1d_box_exact () =
  let obj = quadratic [| 0.7 |] in
  let domain = Domain.interval ~lo:0. ~hi:1. in
  let r = Solve.minimize domain obj in
  checkf 1e-6 "ternary search" 0.7 r.Solve.theta.(0);
  (* clipped optimum *)
  let obj2 = quadratic [| 2. |] in
  let r2 = Solve.minimize domain obj2 in
  checkf 1e-6 "clipped at 1" 1. r2.Solve.theta.(0)

let test_minimize_nonsmooth () =
  (* |t - 0.4| on [-1, 1]^1 via the ball in 2d with an absolute-style loss:
     use the LAD loss over a point mass. *)
  let u = Universe.regression_grid ~d:2 ~levels:3 ~label_levels:3 () in
  (* point mass at some element; the minimizer should achieve value ~ min. *)
  let h = Histogram.point_mass u 4 in
  let loss = Losses.absolute () in
  let r = Solve.minimize_loss_on_histogram ~iters:600 loss (Domain.unit_ball ~dim:2) h in
  (* at the point mass, perfect fit is achievable iff |label| <= ||x||; here we
     only require the solver to be close to the best over a fine candidate
     sweep. *)
  let best = ref infinity in
  for _ = 1 to 2000 do
    let cand = Domain.random_point (Domain.unit_ball ~dim:2) rng in
    let v = Histogram.expect h (fun _ x -> loss.Loss.value cand x) in
    if v < !best then best := v
  done;
  Alcotest.(check bool) "no worse than random sweep + tol" true (r.Solve.value <= !best +. 0.02)

let test_ternary_search () =
  let m = Solve.ternary_search ~lo:(-10.) ~hi:10. (fun x -> ((x -. 3.) *. (x -. 3.)) +. 1.) in
  checkf 1e-6 "unimodal minimum" 3. m

let test_solver_validation () =
  let obj = quadratic [| 0. |] in
  Alcotest.check_raises "iters" (Invalid_argument "Solve.projected_subgradient: iters must be positive")
    (fun () ->
      ignore (Solve.projected_subgradient ~iters:0 ~lipschitz:1. (Domain.unit_ball ~dim:1) obj))

(* --- qcheck --- *)

let qcheck_solution_feasible =
  QCheck.Test.make ~name:"minimize returns feasible point" ~count:50
    QCheck.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (a, b) ->
      let domain = Domain.unit_ball ~dim:2 in
      let r = Solve.minimize ~iters:100 ~lipschitz:10. domain (quadratic [| a; b |]) in
      Domain.contains ~tol:1e-6 domain r.Solve.theta)

let qcheck_minimize_beats_center =
  QCheck.Test.make ~name:"minimize no worse than the center" ~count:50
    QCheck.(pair (float_range (-2.) 2.) (float_range (-2.) 2.))
    (fun (a, b) ->
      let domain = Domain.unit_ball ~dim:2 in
      let obj = quadratic [| a; b |] in
      let r = Solve.minimize ~iters:100 ~lipschitz:10. domain obj in
      r.Solve.value <= obj.Objective.f (Domain.center domain) +. 1e-9)

let () =
  Alcotest.run "pmw_convex"
    [
      ( "domain",
        [
          Alcotest.test_case "basics" `Quick test_domain_basics;
          Alcotest.test_case "projection feasible" `Quick test_domain_projection_feasible;
          Alcotest.test_case "random point feasible" `Quick test_domain_random_point_feasible;
          Alcotest.test_case "validation" `Quick test_domain_validation;
        ] );
      ( "losses",
        [
          Alcotest.test_case "gradients (smooth)" `Quick test_gradients_smooth;
          Alcotest.test_case "gradients (nonsmooth)" `Quick test_gradients_nonsmooth;
          Alcotest.test_case "lipschitz bounds" `Quick test_lipschitz_bounds_hold;
          Alcotest.test_case "convexity" `Quick test_convexity_along_segments;
          Alcotest.test_case "new losses gradients" `Quick test_new_losses_gradients;
          Alcotest.test_case "smoothed hinge ~ hinge" `Quick test_smoothed_hinge_approximates_hinge;
          Alcotest.test_case "eps-insensitive tube" `Quick test_epsilon_insensitive_dead_zone;
          Alcotest.test_case "poisson clamped convex" `Quick test_poisson_convex_and_clamped;
          Alcotest.test_case "strong convexity" `Quick test_strong_convexity_of_prox_quadratic;
          Alcotest.test_case "ridge" `Quick test_ridge_adds_strong_convexity;
          Alcotest.test_case "mean estimation" `Quick test_mean_estimation_minimizer;
          Alcotest.test_case "feature mask" `Quick test_feature_mask;
          Alcotest.test_case "glm structure" `Quick test_glm_structure;
          Alcotest.test_case "scale parameter" `Quick test_scale_parameter;
        ] );
      ( "objective",
        [
          Alcotest.test_case "histogram = dataset" `Quick test_objective_histogram_vs_dataset;
          Alcotest.test_case "add ridge" `Quick test_objective_add_ridge;
        ] );
      ( "solve",
        [
          Alcotest.test_case "interior optimum" `Quick test_solvers_interior_optimum;
          Alcotest.test_case "accelerated gradient" `Quick test_accelerated_gradient;
          Alcotest.test_case "boundary optimum" `Quick test_solvers_boundary_optimum;
          Alcotest.test_case "1d box exact" `Quick test_minimize_1d_box_exact;
          Alcotest.test_case "nonsmooth" `Quick test_minimize_nonsmooth;
          Alcotest.test_case "ternary search" `Quick test_ternary_search;
          Alcotest.test_case "validation" `Quick test_solver_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_solution_feasible; qcheck_minimize_beats_center ] );
    ]
