(* Tests for Pmw_attacks: the Dinur-Nissim reconstruction attack and the
   tracing (membership-inference) attack. These double as end-to-end checks
   that the DP noise levels used elsewhere in the library actually defeat
   the attacks that motivate them. *)

module Reconstruction = Pmw_attacks.Reconstruction
module Tracing = Pmw_attacks.Tracing
module Rng = Pmw_rng.Rng

let test_reconstruction_exact_answers () =
  (* noiseless answers, k = 4n: near-perfect recovery *)
  let rate = Reconstruction.attack_success ~n:64 ~k:256 ~noise:(fun _ -> 0.) ~seed:1 in
  Alcotest.(check bool) (Printf.sprintf "recovery %.3f ~ 1" rate) true (rate >= 0.99)

let test_reconstruction_heavy_noise_defeats () =
  (* noise far above 1/sqrt n: near-chance recovery *)
  let rng = Rng.create ~seed:2 () in
  let noise _ = Pmw_rng.Dist.laplace ~scale:2. rng in
  let rate = Reconstruction.attack_success ~n:64 ~k:256 ~noise ~seed:2 in
  Alcotest.(check bool) (Printf.sprintf "recovery %.3f near chance" rate) true (rate <= 0.75)

let test_reconstruction_monotone_in_noise () =
  let rate_at scale =
    let acc = ref 0. in
    for seed = 1 to 5 do
      let rng = Rng.create ~seed:(seed * 7) () in
      let noise _ = Pmw_rng.Dist.laplace ~scale rng in
      acc := !acc +. Reconstruction.attack_success ~n:64 ~k:256 ~noise ~seed
    done;
    !acc /. 5.
  in
  let clean = rate_at 0.001 in
  let noisy = rate_at 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "more noise, less recovery: %.3f vs %.3f" clean noisy)
    true (noisy < clean)

let test_reconstruction_validation () =
  Alcotest.check_raises "secret length"
    (Invalid_argument "Reconstruction.random_subset_queries: secret length mismatch") (fun () ->
      ignore
        (Reconstruction.random_subset_queries ~n:4 ~k:2 ~secret:[| true |] ~noise:(fun _ -> 0.)
           (Rng.create ~seed:3 ())))

let test_recovery_rate_symmetry () =
  let secret = [| true; false; true; false |] in
  Alcotest.(check (float 1e-12)) "perfect" 1. (Reconstruction.recovery_rate ~secret ~guess:secret);
  let flipped = Array.map not secret in
  (* all-flipped guesses are equally informative *)
  Alcotest.(check (float 1e-12)) "symmetric" 1.
    (Reconstruction.recovery_rate ~secret ~guess:flipped)

let test_tracing_exact_leaks () =
  let rng = Rng.create ~seed:4 () in
  let universe = Pmw_data.Universe.hypercube ~d:10 () in
  let population = Pmw_data.Synth.zipf_histogram ~universe ~s:0.5 rng in
  let r = Tracing.attack ~release:Tracing.mean_release ~population ~n:20 ~trials:300 rng in
  Alcotest.(check bool)
    (Printf.sprintf "advantage %.3f > 0.1" r.Tracing.advantage)
    true (r.Tracing.advantage > 0.1);
  Alcotest.(check bool) "members score higher" true
    (r.Tracing.in_mean_score > r.Tracing.out_mean_score)

let test_tracing_dp_release_resists () =
  let rng = Rng.create ~seed:5 () in
  let universe = Pmw_data.Universe.hypercube ~d:10 () in
  let population = Pmw_data.Synth.zipf_histogram ~universe ~s:0.5 rng in
  let exact = Tracing.attack ~release:Tracing.mean_release ~population ~n:20 ~trials:300 rng in
  let dp_release ds = Tracing.noisy_mean_release ~eps:0.5 ~rng ds in
  let dp = Tracing.attack ~release:dp_release ~population ~n:20 ~trials:300 rng in
  Alcotest.(check bool)
    (Printf.sprintf "DP advantage %.3f well below exact %.3f" dp.Tracing.advantage
       exact.Tracing.advantage)
    true
    (dp.Tracing.advantage < exact.Tracing.advantage /. 2. +. 0.05)

let test_tracing_validation () =
  let rng = Rng.create ~seed:6 () in
  let universe = Pmw_data.Universe.hypercube ~d:3 () in
  let population = Pmw_data.Histogram.uniform universe in
  Alcotest.check_raises "n positive" (Invalid_argument "Tracing.attack: n and trials must be positive")
    (fun () ->
      ignore (Tracing.attack ~release:Tracing.mean_release ~population ~n:0 ~trials:10 rng))

let () =
  Alcotest.run "pmw_attacks"
    [
      ( "reconstruction",
        [
          Alcotest.test_case "exact answers reconstruct" `Quick test_reconstruction_exact_answers;
          Alcotest.test_case "heavy noise defeats" `Quick test_reconstruction_heavy_noise_defeats;
          Alcotest.test_case "monotone in noise" `Quick test_reconstruction_monotone_in_noise;
          Alcotest.test_case "validation" `Quick test_reconstruction_validation;
          Alcotest.test_case "recovery symmetry" `Quick test_recovery_rate_symmetry;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "exact release leaks" `Quick test_tracing_exact_leaks;
          Alcotest.test_case "dp release resists" `Quick test_tracing_dp_release_resists;
          Alcotest.test_case "validation" `Quick test_tracing_validation;
        ] );
    ]
