(* Tests for Pmw_linalg: vector/matrix algebra, numerically careful
   summation, projections (with the metric property checked by qcheck), and
   the scalar special functions. *)

module Vec = Pmw_linalg.Vec
module Mat = Pmw_linalg.Mat
module Proj = Pmw_linalg.Proj
module Special = Pmw_linalg.Special

let checkf = Alcotest.(check (float 1e-9))
let checkf_loose tol = Alcotest.(check (float tol))

(* --- Vec --- *)

let test_vec_basic_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; -5.; 6. |] in
  checkf "dot" 12. (Vec.dot a b);
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; -3.; 9. |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; 7.; -3. |] (Vec.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  checkf "norm1" 6. (Vec.norm1 a);
  checkf "norm2" (sqrt 14.) (Vec.norm2 a);
  checkf "norm_inf" 6. (Vec.norm_inf b);
  checkf "dist2" (Vec.norm2 (Vec.sub a b)) (Vec.dist2 a b);
  checkf "dist1" (Vec.norm1 (Vec.sub a b)) (Vec.dist1 a b)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy ~alpha:3. ~x:[| 2.; -1. |] ~y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 7.; -2. |] y

let test_kahan_sum () =
  (* 1 followed by many tiny values that naive summation drops entirely. *)
  let n = 100_000 in
  let v = Array.make (n + 1) 1e-16 in
  v.(0) <- 1.;
  let kahan = Vec.kahan_sum v in
  let expected = 1. +. (float_of_int n *. 1e-16) in
  Alcotest.(check bool) "kahan keeps the tail" true
    (Float.abs (kahan -. expected) < 1e-17 *. float_of_int n)

let test_vec_basis_mean_lerp () =
  let e1 = Vec.basis 3 1 in
  Alcotest.(check (array (float 0.))) "basis" [| 0.; 1.; 0. |] e1;
  let m = Vec.mean [ [| 0.; 0. |]; [| 2.; 4. |] ] in
  Alcotest.(check (array (float 1e-12))) "mean" [| 1.; 2. |] m;
  let l = Vec.lerp [| 0.; 0. |] [| 2.; 4. |] 0.25 in
  Alcotest.(check (array (float 1e-12))) "lerp" [| 0.5; 1. |] l;
  Alcotest.check_raises "mean empty" (Invalid_argument "Vec.mean: empty list") (fun () ->
      ignore (Vec.mean []))

let test_normalize2 () =
  let v = Vec.normalize2 [| 3.; 4. |] in
  checkf "unit" 1. (Vec.norm2 v);
  let z = Vec.normalize2 [| 0.; 0. |] in
  Alcotest.(check (array (float 0.))) "zero unchanged" [| 0.; 0. |] z

let test_vec_map_conversions () =
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  Alcotest.(check (list (float 0.))) "roundtrip" [ 1.; 2.; 3. ] (Vec.to_list v);
  Alcotest.(check (array (float 1e-12))) "map2" [| 3.; 6.; 9. |]
    (Vec.map2 (fun a b -> a +. b) v (Vec.scale 2. v));
  Alcotest.(check (array (float 1e-12))) "init" [| 0.; 2.; 4. |]
    (Vec.init 3 (fun i -> 2. *. float_of_int i));
  Alcotest.(check (array (float 0.))) "constant" [| 7.; 7. |] (Vec.constant 2 7.);
  Alcotest.(check bool) "approx_equal respects tol" true
    (Vec.approx_equal ~tol:0.1 [| 1.0 |] [| 1.05 |])

(* --- Mat --- *)

let test_mat_matvec () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  Alcotest.(check (array (float 1e-12))) "Ax" [| 5.; 11.; 17. |] (Mat.matvec m [| 1.; 2. |]);
  Alcotest.(check (array (float 1e-12)))
    "A'x" [| 14.; 18. |]
    (Mat.matvec_t m [| 1.; 1.; 2. |])

let test_mat_transpose_matmul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let at = Mat.transpose a in
  Alcotest.(check (float 1e-12)) "transpose" 3. (Mat.get at 0 1);
  let p = Mat.matmul a (Mat.identity 2) in
  Alcotest.(check (float 1e-12)) "A*I = A" (Mat.get a 1 0) (Mat.get p 1 0)

let test_mat_accessors () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 0.))) "row" [| 3.; 4. |] (Mat.row m 1);
  let d = Mat.add_diagonal m 10. in
  Alcotest.(check (float 1e-12)) "diag bumped" 11. (Mat.get d 0 0);
  Alcotest.(check (float 1e-12)) "off-diag intact" 2. (Mat.get d 0 1);
  Mat.set m 0 1 9.;
  Alcotest.(check (float 1e-12)) "set" 9. (Mat.get m 0 1);
  Alcotest.check_raises "index guard" (Invalid_argument "Mat: index out of range") (fun () ->
      ignore (Mat.get m 5 0));
  let g = Mat.gram (Mat.of_rows [| [| 1.; 0. |]; [| 1.; 1. |] |]) in
  Alcotest.(check (float 1e-12)) "gram" 2. (Mat.get g 0 0);
  Alcotest.(check (float 1e-12)) "gram off" 1. (Mat.get g 0 1)

let test_mat_solve () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Mat.solve a [| 5.; 10. |] in
  (* solution of 2x+y=5, x+3y=10: x=1, y=3 *)
  Alcotest.(check (array (float 1e-9))) "solution" [| 1.; 3. |] x

let test_mat_solve_pivoting () =
  (* Leading zero forces a row swap. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Mat.solve a [| 2.; 3. |] in
  Alcotest.(check (array (float 1e-12))) "swap solved" [| 3.; 2. |] x

let test_mat_solve_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Failure "Mat.solve: singular matrix") (fun () ->
      ignore (Mat.solve a [| 1.; 1. |]))

let test_least_squares_recovers_line () =
  (* y = 2x + 1 on points x = 0..4 with design [x, 1]. *)
  let rows = Array.init 5 (fun i -> [| float_of_int i; 1. |]) in
  let a = Mat.of_rows rows in
  let b = Array.init 5 (fun i -> (2. *. float_of_int i) +. 1.) in
  let coef = Mat.least_squares a b in
  checkf_loose 1e-8 "slope" 2. coef.(0);
  checkf_loose 1e-8 "intercept" 1. coef.(1)

(* --- Proj --- *)

let test_proj_l2_ball () =
  let inside = [| 0.3; 0.4 |] in
  Alcotest.(check (array (float 1e-12))) "inside unchanged" inside (Proj.l2_ball ~radius:1. inside);
  let far = Proj.l2_ball ~radius:1. [| 3.; 4. |] in
  checkf "on boundary" 1. (Vec.norm2 far);
  Alcotest.(check (array (float 1e-12))) "direction kept" [| 0.6; 0.8 |] far

let test_proj_box () =
  Alcotest.(check (array (float 1e-12)))
    "clamped" [| -1.; 0.5; 1. |]
    (Proj.box ~lo:(-1.) ~hi:1. [| -9.; 0.5; 42. |])

let test_proj_simplex_known () =
  let p = Proj.simplex [| 0.5; 0.5 |] in
  Alcotest.(check (array (float 1e-9))) "already simplex" [| 0.5; 0.5 |] p;
  let p2 = Proj.simplex [| 1.; 0. |] in
  Alcotest.(check (array (float 1e-9))) "vertex" [| 1.; 0. |] p2;
  let p3 = Proj.simplex [| 2.; 2. |] in
  Alcotest.(check (array (float 1e-9))) "symmetric" [| 0.5; 0.5 |] p3;
  let p4 = Proj.simplex [| -5.; -7. |] in
  checkf "sums to one even from far outside" 1. (Vec.kahan_sum p4)

let test_proj_halfspace () =
  let v = Proj.halfspace ~normal:[| 1.; 0. |] ~offset:1. [| 3.; 2. |] in
  Alcotest.(check (array (float 1e-12))) "projected" [| 1.; 2. |] v;
  let w = Proj.halfspace ~normal:[| 1.; 0. |] ~offset:1. [| 0.; 2. |] in
  Alcotest.(check (array (float 1e-12))) "inside unchanged" [| 0.; 2. |] w

(* qcheck: projections are idempotent, feasible, and no farther than any
   other feasible point we can construct. *)

let vec_gen dim = QCheck.(array_of_size (Gen.return dim) (float_bound_exclusive 10.))

let qcheck_ball_feasible =
  QCheck.Test.make ~name:"l2_ball projection feasible+idempotent" ~count:300 (vec_gen 4)
    (fun v ->
      let p = Proj.l2_ball ~radius:2. v in
      Vec.norm2 p <= 2. +. 1e-9
      && Vec.dist2 p (Proj.l2_ball ~radius:2. p) < 1e-9)

let qcheck_simplex_feasible =
  QCheck.Test.make ~name:"simplex projection feasible+idempotent" ~count:300 (vec_gen 5)
    (fun v ->
      let p = Proj.simplex v in
      Array.for_all (fun x -> x >= -1e-9) p
      && Float.abs (Vec.kahan_sum p -. 1.) < 1e-6
      && Vec.dist1 p (Proj.simplex p) < 1e-6)

let qcheck_simplex_closest_than_uniform =
  QCheck.Test.make ~name:"simplex projection beats uniform point" ~count:300 (vec_gen 5)
    (fun v ->
      let p = Proj.simplex v in
      let uniform = Array.make 5 0.2 in
      Vec.dist2 v p <= Vec.dist2 v uniform +. 1e-9)

let qcheck_box_idempotent =
  QCheck.Test.make ~name:"box projection idempotent" ~count:300 (vec_gen 3) (fun v ->
      let p = Proj.box ~lo:(-1.) ~hi:1. v in
      Vec.dist2 p (Proj.box ~lo:(-1.) ~hi:1. p) = 0.)

(* --- Special --- *)

let test_log_sum_exp () =
  checkf_loose 1e-9 "lse of log(1),log(2),log(3)" (log 6.)
    (Special.log_sum_exp [| log 1.; log 2.; log 3. |]);
  (* stability: huge inputs must not overflow *)
  let lse = Special.log_sum_exp [| 1000.; 1000. |] in
  checkf_loose 1e-9 "stable" (1000. +. log 2.) lse;
  Alcotest.(check (float 0.)) "empty" neg_infinity (Special.log_sum_exp [||])

let test_softmax () =
  let s = Special.softmax [| 0.; 0. |] in
  Alcotest.(check (array (float 1e-12))) "uniform" [| 0.5; 0.5 |] s;
  let big = Special.softmax [| 1e4; 0. |] in
  checkf_loose 1e-9 "saturates" 1. big.(0)

let test_logistic () =
  checkf "midpoint" 0.5 (Special.logistic 0.);
  Alcotest.(check bool) "large positive" true (Special.logistic 100. > 0.999999);
  Alcotest.(check bool) "large negative" true (Special.logistic (-100.) < 1e-6);
  checkf_loose 1e-12 "no overflow" 0. (Special.logistic (-1e4))

let test_log1p_exp () =
  checkf_loose 1e-9 "at 0" (log 2.) (Special.log1p_exp 0.);
  checkf_loose 1e-6 "large z ~ z" 50. (Special.log1p_exp 50.);
  Alcotest.(check bool) "large negative ~ 0" true (Special.log1p_exp (-50.) < 1e-20)

let test_erf () =
  checkf_loose 1e-6 "erf 0" 0. (Special.erf 0.);
  checkf_loose 1e-6 "erf 1" 0.8427008 (Special.erf 1.);
  checkf_loose 1e-6 "odd" (-.Special.erf 0.5) (Special.erf (-0.5))

let test_gaussian_cdf () =
  checkf_loose 1e-6 "median" 0.5 (Special.gaussian_cdf ~mu:3. ~sigma:2. 3.);
  checkf_loose 1e-3 "one sigma" 0.8413 (Special.gaussian_cdf ~mu:0. ~sigma:1. 1.)

let test_binary_search_root () =
  let r = Special.binary_search_root ~lo:0. ~hi:4. (fun x -> (x *. x) -. 2.) in
  checkf_loose 1e-9 "sqrt 2" (sqrt 2.) r

let () =
  Alcotest.run "pmw_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic_ops;
          Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "kahan" `Quick test_kahan_sum;
          Alcotest.test_case "basis/mean/lerp" `Quick test_vec_basis_mean_lerp;
          Alcotest.test_case "normalize2" `Quick test_normalize2;
          Alcotest.test_case "map/conversions" `Quick test_vec_map_conversions;
        ] );
      ( "mat",
        [
          Alcotest.test_case "matvec" `Quick test_mat_matvec;
          Alcotest.test_case "transpose/matmul" `Quick test_mat_transpose_matmul;
          Alcotest.test_case "accessors" `Quick test_mat_accessors;
          Alcotest.test_case "solve" `Quick test_mat_solve;
          Alcotest.test_case "solve pivoting" `Quick test_mat_solve_pivoting;
          Alcotest.test_case "solve singular" `Quick test_mat_solve_singular;
          Alcotest.test_case "least squares" `Quick test_least_squares_recovers_line;
        ] );
      ( "proj",
        [
          Alcotest.test_case "l2 ball" `Quick test_proj_l2_ball;
          Alcotest.test_case "box" `Quick test_proj_box;
          Alcotest.test_case "simplex" `Quick test_proj_simplex_known;
          Alcotest.test_case "halfspace" `Quick test_proj_halfspace;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              qcheck_ball_feasible;
              qcheck_simplex_feasible;
              qcheck_simplex_closest_than_uniform;
              qcheck_box_idempotent;
            ] );
      ( "special",
        [
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "softmax" `Quick test_softmax;
          Alcotest.test_case "logistic" `Quick test_logistic;
          Alcotest.test_case "log1p_exp" `Quick test_log1p_exp;
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "gaussian cdf" `Quick test_gaussian_cdf;
          Alcotest.test_case "bisection" `Quick test_binary_search_root;
        ] );
    ]
