(* Tests for Pmw_data: universes, histograms (Section 2.1 invariants),
   datasets & adjacency, discretization, and the synthetic generators. *)

module Vec = Pmw_linalg.Vec
module Point = Pmw_data.Point
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Rng = Pmw_rng.Rng

let checkf tol = Alcotest.(check (float tol))

(* --- Point --- *)

let test_point_dist () =
  let a = Point.make ~label:1. [| 0.; 0. |] in
  let b = Point.make ~label:1. [| 3.; 4. |] in
  checkf 1e-12 "feature distance" 5. (Point.dist a b);
  let c = Point.make ~label:2. [| 0.; 0. |] in
  checkf 1e-12 "label distance" 1. (Point.dist a c)

(* --- Universe --- *)

let test_hypercube () =
  let u = Universe.hypercube ~d:4 () in
  Alcotest.(check int) "size 2^d" 16 (Universe.size u);
  Alcotest.(check int) "dim" 4 (Universe.dim u);
  Universe.iter u ~f:(fun _ p ->
      checkf 1e-9 "every point has unit norm" 1. (Point.norm p);
      checkf 1e-12 "unlabeled" 0. p.Point.label);
  checkf 1e-12 "log size" (log 16.) (Universe.log_size u)

let test_hypercube_distinct_points () =
  let u = Universe.hypercube ~d:3 () in
  for i = 0 to Universe.size u - 1 do
    for j = i + 1 to Universe.size u - 1 do
      Alcotest.(check bool) "distinct" false (Point.equal (Universe.get u i) (Universe.get u j))
    done
  done

let test_labeled_hypercube () =
  let u = Universe.labeled_hypercube ~d:3 ~labels:[| -1.; 1. |] () in
  Alcotest.(check int) "size 2^d * labels" 16 (Universe.size u);
  let labels = Hashtbl.create 2 in
  Universe.iter u ~f:(fun _ p -> Hashtbl.replace labels p.Point.label ());
  Alcotest.(check int) "both labels present" 2 (Hashtbl.length labels)

let test_grid_ball () =
  let u = Universe.grid_ball ~d:2 ~levels:5 () in
  Alcotest.(check int) "levels^d" 25 (Universe.size u);
  Universe.iter u ~f:(fun _ p ->
      Alcotest.(check bool) "inside unit ball" true (Point.norm p <= 1. +. 1e-9))

let test_ball_cover () =
  let u = Universe.ball_cover ~d:2 ~levels:9 () in
  (* all points inside the ball, and strictly more coverage than the
     inscribed-cube grid of equal spacing *)
  Universe.iter u ~f:(fun _ p ->
      Alcotest.(check bool) "inside ball" true (Point.norm p <= 1. +. 1e-9));
  Alcotest.(check bool) "covers beyond the inscribed cube" true
    (Universe.fold u ~init:false ~f:(fun acc _ p ->
         acc || Pmw_linalg.Vec.norm_inf p.Point.features > 1. /. sqrt 2. +. 1e-9));
  (* coverage: random ball points snap within one cell diagonal *)
  let rng = Rng.create ~seed:30 () in
  let diag = 2. *. sqrt 2. /. 8. in
  for _ = 1 to 100 do
    let p = Point.make (Synth.random_unit_vector ~dim:2 rng) in
    let i = Universe.nearest u p in
    Alcotest.(check bool) "sphere point covered" true
      (Point.dist p (Universe.get u i) <= diag +. 1e-9)
  done;
  let lab = Universe.ball_cover_labeled ~d:2 ~levels:5 ~label_levels:3 () in
  Alcotest.(check int) "labeled size = cover x labels" (3 * Universe.size (Universe.ball_cover ~d:2 ~levels:5 ()))
    (Universe.size lab)

let test_regression_grid () =
  let u = Universe.regression_grid ~d:2 ~levels:3 ~label_levels:4 () in
  Alcotest.(check int) "size" 36 (Universe.size u);
  Universe.iter u ~f:(fun _ p ->
      Alcotest.(check bool) "label bounded" true (Float.abs p.Point.label <= 1. +. 1e-9))

let test_universe_validation () =
  Alcotest.check_raises "d too large"
    (Invalid_argument "Universe: hypercube dimension too large (universe would not fit in memory)")
    (fun () -> ignore (Universe.hypercube ~d:25 ()));
  Alcotest.check_raises "empty" (Invalid_argument "Universe.of_points: empty universe") (fun () ->
      ignore (Universe.of_points ~name:"x" [||]))

let test_nearest () =
  let u = Universe.grid_ball ~d:1 ~levels:3 () in
  (* axis: -1, 0, 1 *)
  let idx = Universe.nearest u (Point.make [| 0.9 |]) in
  checkf 1e-12 "snaps to 1" 1. (Universe.get u idx).Point.features.(0);
  let idx0 = Universe.nearest u (Point.make [| 0.1 |]) in
  checkf 1e-12 "snaps to 0" 0. (Universe.get u idx0).Point.features.(0)

let test_max_feature_norm () =
  let u = Universe.hypercube ~d:5 ~scale:2. () in
  checkf 1e-9 "scaled norm" 2. (Universe.max_feature_norm u)

(* --- Histogram --- *)

let u8 = Universe.hypercube ~d:3 ()

let test_histogram_uniform () =
  let h = Histogram.uniform u8 in
  checkf 1e-12 "mass each" 0.125 (Histogram.get h 0);
  checkf 1e-9 "entropy is log|X|" (log 8.) (Histogram.entropy h)

let test_histogram_of_weights_normalizes () =
  let h = Histogram.of_weights u8 [| 2.; 0.; 0.; 0.; 0.; 0.; 0.; 6. |] in
  checkf 1e-12 "normalized" 0.25 (Histogram.get h 0);
  checkf 1e-12 "normalized" 0.75 (Histogram.get h 7);
  Alcotest.(check int) "support" 2 (Histogram.support_size h)

let test_histogram_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.of_weights: negative weight")
    (fun () -> ignore (Histogram.of_weights u8 (Array.make 8 (-1.))));
  Alcotest.check_raises "zero mass" (Invalid_argument "Histogram.of_weights: non-positive total mass")
    (fun () -> ignore (Histogram.of_weights u8 (Array.make 8 0.)));
  Alcotest.check_raises "length" (Invalid_argument "Histogram.of_weights: length mismatch")
    (fun () -> ignore (Histogram.of_weights u8 [| 1. |]))

let test_histogram_expect () =
  let h = Histogram.point_mass u8 3 in
  let p3 = Universe.get u8 3 in
  checkf 1e-12 "expectation under point mass" p3.Point.features.(0)
    (Histogram.expect h (fun _ x -> x.Point.features.(0)));
  let g = Histogram.expect_vec h ~dim:3 (fun _ x -> x.Point.features) in
  Alcotest.(check (array (float 1e-12))) "vector expectation" p3.Point.features g

let test_histogram_distances () =
  let a = Histogram.point_mass u8 0 and b = Histogram.point_mass u8 1 in
  checkf 1e-12 "l1 distance of disjoint points" 2. (Histogram.l1_dist a b);
  checkf 1e-12 "linf" 1. (Histogram.linf_dist a b);
  Alcotest.(check (float 0.)) "kl infinite off support" infinity (Histogram.kl_div a b);
  checkf 1e-12 "kl self" 0. (Histogram.kl_div a a)

let test_histogram_mix () =
  let a = Histogram.point_mass u8 0 and b = Histogram.point_mass u8 1 in
  let m = Histogram.mix a b 0.25 in
  checkf 1e-12 "mix mass" 0.75 (Histogram.get m 0);
  checkf 1e-12 "mix mass" 0.25 (Histogram.get m 1)

let test_histogram_sampling () =
  let rng = Rng.create ~seed:31 () in
  let h = Histogram.of_weights u8 [| 1.; 0.; 0.; 0.; 0.; 0.; 0.; 3. |] in
  let draw = Histogram.sampler h in
  let count7 = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = draw rng in
    Alcotest.(check bool) "support only" true (i = 0 || i = 7);
    if i = 7 then incr count7
  done;
  Alcotest.(check bool) "frequency 3/4" true
    (Float.abs ((float_of_int !count7 /. float_of_int n) -. 0.75) < 0.01)

(* --- Dataset --- *)

let test_dataset_histogram () =
  let ds = Dataset.create u8 [| 0; 0; 7; 7; 7; 7 |] in
  let h = Dataset.histogram ds in
  checkf 1e-12 "counts" (1. /. 3.) (Histogram.get h 0);
  checkf 1e-12 "counts" (2. /. 3.) (Histogram.get h 7)

let test_dataset_adjacency_l1 () =
  (* Section 2.1: adjacent datasets have histograms within 2/n in L1. *)
  let rng = Rng.create ~seed:32 () in
  let ds = Dataset.of_histogram ~n:50 (Histogram.uniform u8) rng in
  for _ = 1 to 20 do
    let neighbor = Dataset.random_neighbor ds rng in
    let d = Histogram.l1_dist (Dataset.histogram ds) (Dataset.histogram neighbor) in
    Alcotest.(check bool) "||D - D'||_1 <= 2/n" true (d <= (2. /. 50.) +. 1e-12)
  done

let test_dataset_replace_row () =
  let ds = Dataset.create u8 [| 1; 2; 3 |] in
  let ds' = Dataset.replace_row ds ~index:1 ~value:5 in
  Alcotest.(check int) "replaced" 5 (Dataset.row ds' 1);
  Alcotest.(check int) "original intact" 2 (Dataset.row ds 1);
  Alcotest.(check int) "others kept" 3 (Dataset.row ds' 2)

let test_dataset_mean_loss_matches_histogram () =
  let ds = Dataset.create u8 [| 0; 7; 7; 0 |] in
  let f (x : Point.t) = x.Point.features.(1) +. 2. in
  let direct = Dataset.mean_loss ds f in
  let via_hist = Histogram.expect (Dataset.histogram ds) (fun _ x -> f x) in
  checkf 1e-12 "consistent" via_hist direct

let test_dataset_subsample_concat () =
  let rng = Rng.create ~seed:33 () in
  let ds = Dataset.create u8 (Array.init 20 (fun i -> i mod 8)) in
  let sub = Dataset.subsample ds ~m:5 rng in
  Alcotest.(check int) "subsample size" 5 (Dataset.size sub);
  let cat = Dataset.concat ds sub in
  Alcotest.(check int) "concat size" 25 (Dataset.size cat)

let test_dataset_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dataset.create: empty dataset") (fun () ->
      ignore (Dataset.create u8 [||]));
  Alcotest.check_raises "range" (Invalid_argument "Dataset.create: row index out of range")
    (fun () -> ignore (Dataset.create u8 [| 99 |]))

(* --- Synth --- *)

let test_random_unit_vector () =
  let rng = Rng.create ~seed:34 () in
  for _ = 1 to 50 do
    let v = Synth.random_unit_vector ~dim:6 rng in
    checkf 1e-9 "unit" 1. (Vec.norm2 v)
  done

let test_linear_regression_signal () =
  (* The planted signal must survive discretization: the snapped labels should
     correlate with <theta*, x>. *)
  let rng = Rng.create ~seed:35 () in
  let universe = Universe.regression_grid ~d:2 ~levels:7 ~label_levels:9 () in
  let theta_star = [| 0.7; 0. |] in
  let ds = Synth.linear_regression ~universe ~theta_star ~noise:0.05 ~n:4000 rng in
  let cov =
    Dataset.mean_loss ds (fun x -> x.Point.label *. Vec.dot theta_star x.Point.features)
  in
  Alcotest.(check bool) "label correlates with planted signal" true (cov > 0.02)

let test_logistic_labels () =
  let rng = Rng.create ~seed:36 () in
  let universe = Universe.labeled_hypercube ~d:4 ~labels:[| -1.; 1. |] () in
  let theta_star = Synth.random_unit_vector ~dim:4 rng in
  let ds = Synth.logistic_classification ~universe ~theta_star ~margin:6. ~n:3000 rng in
  (* labels in {-1, +1} and correlated with the margin *)
  let agreement =
    Dataset.mean_loss ds (fun x ->
        if x.Point.label *. Vec.dot theta_star x.Point.features > 0. then 1. else 0.)
  in
  Alcotest.(check bool) "labels mostly agree with planted direction" true (agreement > 0.7)

let test_zipf_histogram () =
  let rng = Rng.create ~seed:37 () in
  let h = Synth.zipf_histogram ~universe:u8 ~s:2. rng in
  (* Heavily skewed: top element should dominate. *)
  let w = Histogram.weights h in
  Array.sort (fun a b -> compare b a) w;
  Alcotest.(check bool) "skewed" true (w.(0) > 0.5);
  let h0 = Synth.zipf_histogram ~universe:u8 ~s:0. rng in
  checkf 1e-9 "s=0 uniform" (log 8.) (Histogram.entropy h0)

let test_cluster_histogram () =
  let rng = Rng.create ~seed:38 () in
  let h = Synth.cluster_histogram ~universe:u8 ~centers:2 ~spread:0.3 rng in
  (* valid distribution with less than maximal entropy *)
  Alcotest.(check bool) "concentrated" true (Histogram.entropy h < log 8.)

(* --- Continuous ingestion --- *)

module Continuous = Pmw_data.Continuous

let test_plan_resolution () =
  List.iter
    (fun alpha ->
      let spec = Continuous.plan ~alpha ~dim:2 ~labeled:true () in
      Alcotest.(check bool)
        (Printf.sprintf "rounding error within alpha=%g" alpha)
        true
        (Continuous.rounding_error spec <= alpha +. 1e-9);
      (* finer alpha, finer grid *)
      let coarser = Continuous.plan ~alpha:(2. *. alpha) ~dim:2 ~labeled:true () in
      Alcotest.(check bool) "monotone resolution" true
        (coarser.Continuous.levels <= spec.Continuous.levels))
    [ 0.4; 0.25; 0.1 ]

let test_plan_caps_universe () =
  let spec = Continuous.plan ~alpha:0.01 ~dim:4 ~labeled:false ~max_universe:10_000 () in
  let u = Continuous.universe_of_spec spec in
  Alcotest.(check bool) "capped" true (Universe.size u <= 10_000);
  (* the coarser grid's rounding error honestly exceeds alpha *)
  Alcotest.(check bool) "reported error honest" true (Continuous.rounding_error spec > 0.01)

let test_ingest_roundtrip_accuracy () =
  let rng = Rng.create ~seed:39 () in
  let features = Array.init 200 (fun _ -> Synth.random_unit_vector ~dim:2 rng) in
  let labels = Array.init 200 (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let universe, ds = Continuous.ingest ~alpha:0.1 ~features ~labels () in
  Alcotest.(check int) "all records kept" 200 (Dataset.size ds);
  let spec = Continuous.plan ~alpha:0.1 ~dim:2 ~labeled:true () in
  let bound = Continuous.rounding_error spec in
  for i = 0 to 199 do
    let original = Point.make ~label:labels.(i) features.(i) in
    let snapped = Dataset.row_point ds i in
    Alcotest.(check bool)
      (Printf.sprintf "record %d within rounding bound" i)
      true
      (Point.dist original snapped <= bound +. 1e-9)
  done;
  Alcotest.(check bool) "universe is labeled grid" true (Universe.dim universe = 2)

let test_ingest_clips_outliers () =
  let universe, ds =
    Continuous.ingest ~alpha:0.2 ~features:[| [| 5.; 0. |] |] ~labels:[| 7. |] ()
  in
  ignore universe;
  let p = Dataset.row_point ds 0 in
  Alcotest.(check bool) "feature clipped into ball" true (Point.norm p <= 1. +. 1e-9);
  Alcotest.(check bool) "label clipped" true (Float.abs p.Point.label <= 1. +. 1e-9)

(* --- Io --- *)

module Io = Pmw_data.Io

let temp_file () = Filename.temp_file "pmw_test" ".csv"

let test_io_dataset_roundtrip () =
  let rng = Rng.create ~seed:40 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let ds = Dataset.of_histogram ~n:300 (Histogram.uniform universe) rng in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_dataset ~path ds;
      let _, loaded = Io.load_dataset ~path ~alpha:0.05 () in
      Alcotest.(check int) "row count preserved" 300 (Dataset.size loaded);
      (* records already lie on a grid, so re-ingestion at fine alpha must
         keep them within the rounding bound of the new grid *)
      for i = 0 to 9 do
        let a = Dataset.row_point ds i and b = Dataset.row_point loaded i in
        Alcotest.(check bool) "row close after roundtrip" true (Point.dist a b < 0.1)
      done)

let test_io_histogram_save () =
  let universe = Universe.hypercube ~d:3 () in
  let h = Histogram.of_weights universe (Array.init 8 (fun i -> float_of_int (i + 1))) in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_histogram ~path h;
      let raw = Io.load_raw_csv ~path in
      Alcotest.(check int) "one row per element" 8 (Array.length raw);
      (* last column is the mass; must sum to 1 *)
      let mass = Array.fold_left (fun acc r -> acc +. r.(Array.length r - 1)) 0. raw in
      checkf 1e-9 "masses sum to 1" 1. mass)

let test_io_histogram_roundtrip () =
  let universe = Universe.regression_grid ~d:2 ~levels:3 ~label_levels:3 () in
  let h =
    Histogram.of_weights universe (Array.init (Universe.size universe) (fun i -> float_of_int (i + 1)))
  in
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_histogram ~path h;
      let loaded = Io.load_histogram ~path in
      Alcotest.(check int) "same size" (Histogram.size h) (Histogram.size loaded);
      for i = 0 to Histogram.size h - 1 do
        checkf 1e-12 "mass preserved" (Histogram.get h i) (Histogram.get loaded i);
        Alcotest.(check bool) "point preserved" true
          (Point.equal
             (Universe.get universe i)
             (Universe.get (Histogram.universe loaded) i))
      done)

let test_io_rejects_malformed () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "1.0,2.0\n1.0,abc\n";
      close_out oc;
      Alcotest.(check bool) "bad field rejected" true
        (try
           ignore (Io.load_raw_csv ~path);
           false
         with Failure _ -> true));
  let path2 = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path2)
    (fun () ->
      let oc = open_out path2 in
      output_string oc "1.0,2.0\n1.0\n";
      close_out oc;
      Alcotest.(check bool) "ragged row rejected" true
        (try
           ignore (Io.load_raw_csv ~path:path2);
           false
         with Failure _ -> true))

(* --- qcheck --- *)

let qcheck_of_weights_sums_to_one =
  QCheck.Test.make ~name:"of_weights always sums to 1" ~count:300
    QCheck.(array_of_size (QCheck.Gen.return 8) (float_bound_inclusive 10.))
    (fun w ->
      QCheck.assume (Array.exists (fun x -> x > 0.) w);
      let h = Histogram.of_weights u8 w in
      Float.abs (Vec.kahan_sum (Histogram.weights h) -. 1.) < 1e-9)

let qcheck_kl_nonneg =
  QCheck.Test.make ~name:"KL divergence non-negative" ~count:200
    QCheck.(
      pair
        (array_of_size (Gen.return 8) (float_range 0.01 10.))
        (array_of_size (Gen.return 8) (float_range 0.01 10.)))
    (fun (wp, wq) ->
      let p = Histogram.of_weights u8 wp and q = Histogram.of_weights u8 wq in
      Histogram.kl_div p q >= 0.)

let qcheck_nearest_is_argmin =
  QCheck.Test.make ~name:"nearest returns the closest element" ~count:200
    QCheck.(pair (float_range (-1.5) 1.5) (float_range (-1.5) 1.5))
    (fun (a, b) ->
      let u = Universe.grid_ball ~d:2 ~levels:4 () in
      let p = Point.make [| a; b |] in
      let i = Universe.nearest u p in
      let di = Point.dist p (Universe.get u i) in
      Universe.fold u ~init:true ~f:(fun acc _ q -> acc && di <= Point.dist p q +. 1e-12))

let () =
  Alcotest.run "pmw_data"
    [
      ("point", [ Alcotest.test_case "dist" `Quick test_point_dist ]);
      ( "universe",
        [
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "hypercube distinct" `Quick test_hypercube_distinct_points;
          Alcotest.test_case "labeled hypercube" `Quick test_labeled_hypercube;
          Alcotest.test_case "grid ball" `Quick test_grid_ball;
          Alcotest.test_case "ball cover" `Quick test_ball_cover;
          Alcotest.test_case "regression grid" `Quick test_regression_grid;
          Alcotest.test_case "validation" `Quick test_universe_validation;
          Alcotest.test_case "nearest" `Quick test_nearest;
          Alcotest.test_case "max feature norm" `Quick test_max_feature_norm;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "uniform" `Quick test_histogram_uniform;
          Alcotest.test_case "of_weights" `Quick test_histogram_of_weights_normalizes;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          Alcotest.test_case "expect" `Quick test_histogram_expect;
          Alcotest.test_case "distances" `Quick test_histogram_distances;
          Alcotest.test_case "mix" `Quick test_histogram_mix;
          Alcotest.test_case "sampling" `Quick test_histogram_sampling;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "histogram" `Quick test_dataset_histogram;
          Alcotest.test_case "adjacency L1" `Quick test_dataset_adjacency_l1;
          Alcotest.test_case "replace row" `Quick test_dataset_replace_row;
          Alcotest.test_case "mean loss consistency" `Quick test_dataset_mean_loss_matches_histogram;
          Alcotest.test_case "subsample/concat" `Quick test_dataset_subsample_concat;
          Alcotest.test_case "validation" `Quick test_dataset_validation;
        ] );
      ( "synth",
        [
          Alcotest.test_case "unit vector" `Quick test_random_unit_vector;
          Alcotest.test_case "regression signal" `Quick test_linear_regression_signal;
          Alcotest.test_case "logistic labels" `Quick test_logistic_labels;
          Alcotest.test_case "zipf" `Quick test_zipf_histogram;
          Alcotest.test_case "clusters" `Quick test_cluster_histogram;
        ] );
      ( "continuous",
        [
          Alcotest.test_case "plan resolution" `Quick test_plan_resolution;
          Alcotest.test_case "universe cap" `Quick test_plan_caps_universe;
          Alcotest.test_case "ingest rounding bound" `Quick test_ingest_roundtrip_accuracy;
          Alcotest.test_case "outlier clipping" `Quick test_ingest_clips_outliers;
        ] );
      ( "io",
        [
          Alcotest.test_case "dataset roundtrip" `Quick test_io_dataset_roundtrip;
          Alcotest.test_case "histogram save" `Quick test_io_histogram_save;
          Alcotest.test_case "histogram roundtrip" `Quick test_io_histogram_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_io_rejects_malformed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_of_weights_sums_to_one; qcheck_kl_nonneg; qcheck_nearest_is_argmin ] );
    ]
