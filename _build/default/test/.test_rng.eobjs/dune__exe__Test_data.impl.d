test/test_data.ml: Alcotest Array Filename Float Fun Gen Hashtbl List Pmw_data Pmw_linalg Pmw_rng Printf QCheck QCheck_alcotest Sys
