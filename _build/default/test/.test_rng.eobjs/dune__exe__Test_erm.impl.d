test/test_erm.ml: Alcotest List Pmw_convex Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_rng Printf QCheck QCheck_alcotest
