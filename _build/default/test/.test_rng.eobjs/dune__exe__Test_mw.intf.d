test/test_mw.mli:
