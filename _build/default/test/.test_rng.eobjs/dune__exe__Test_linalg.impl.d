test/test_linalg.ml: Alcotest Array Float Gen List Pmw_linalg QCheck QCheck_alcotest
