test/test_dp.ml: Alcotest Array Float List Pmw_dp Pmw_rng Printf QCheck QCheck_alcotest
