test/test_core.ml: Alcotest Array Bool Float List Pmw_convex Pmw_core Pmw_data Pmw_dp Pmw_erm Pmw_linalg Pmw_rng Printf QCheck QCheck_alcotest
