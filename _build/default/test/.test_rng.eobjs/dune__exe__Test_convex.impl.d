test/test_convex.ml: Alcotest Array Float List Option Pmw_convex Pmw_data Pmw_linalg Pmw_rng Printf QCheck QCheck_alcotest
