test/test_rng.ml: Alcotest Array Float Hashtbl Int64 List Pmw_rng QCheck QCheck_alcotest
