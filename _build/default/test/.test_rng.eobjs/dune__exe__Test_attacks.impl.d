test/test_attacks.ml: Alcotest Array Pmw_attacks Pmw_data Pmw_rng Printf
