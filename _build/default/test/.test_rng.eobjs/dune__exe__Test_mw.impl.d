test/test_mw.ml: Alcotest Array Float Gen List Pmw_data Pmw_linalg Pmw_mw Printf QCheck QCheck_alcotest
