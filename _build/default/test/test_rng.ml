(* Tests for Pmw_rng: generator determinism and the distributional sanity of
   every sampler the privacy mechanisms rely on. Statistical checks use fixed
   seeds and generous tolerances so they are deterministic. *)

module Rng = Pmw_rng.Rng
module Dist = Pmw_rng.Dist
module Splitmix64 = Pmw_rng.Splitmix64

let check_float = Alcotest.(check (float 1e-12))

let mean_of n f rng =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f rng
  done;
  !acc /. float_of_int n

let var_of n f rng =
  let samples = Array.init n (fun _ -> f rng) in
  let mu = Array.fold_left ( +. ) 0. samples /. float_of_int n in
  Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0. samples /. float_of_int n

(* --- generators --- *)

let test_determinism () =
  let a = Rng.create ~seed:123 () in
  let b = Rng.create ~seed:123 () in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_distinct_seeds () =
  let a = Rng.create ~seed:1 () in
  let b = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 2)

let test_copy_independent () =
  let a = Rng.create ~seed:5 () in
  let b = Rng.copy a in
  let va = Rng.float a in
  let vb = Rng.float b in
  check_float "copy resumes identically" va vb;
  (* advancing a does not advance b *)
  let _ = Rng.float a in
  let _ = Rng.float a in
  let va3 = Rng.float a and vb1 = Rng.float b in
  Alcotest.(check bool) "diverged" true (va3 <> vb1)

let test_split_decorrelated () =
  let parent = Rng.create ~seed:9 () in
  let child = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 parent) (Rng.bits64 child) then incr matches
  done;
  Alcotest.(check bool) "split stream differs" true (!matches < 2)

let test_float_range () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let u = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:4 () in
  let mu = mean_of 100_000 Rng.float rng in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mu -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create ~seed:6 () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniform () =
  let rng = Rng.create ~seed:8 () in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.int rng 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "each bucket ~1/5" true (Float.abs (f -. 0.2) < 0.01))
    counts

let test_uniform_interval () =
  let rng = Rng.create ~seed:10 () in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng ~lo:(-3.) ~hi:2. in
    Alcotest.(check bool) "in [-3,2)" true (v >= -3. && v < 2.)
  done

let test_splitmix_known_stream () =
  (* SplitMix64 reference values for seed 0 (from the published algorithm). *)
  let sm = Splitmix64.create 0L in
  let first = Splitmix64.next sm in
  Alcotest.(check bool) "nonzero and deterministic" true
    (Int64.equal first (Splitmix64.create 0L |> Splitmix64.next));
  let second = Splitmix64.next sm in
  Alcotest.(check bool) "stream advances" true (not (Int64.equal first second))

(* --- distributions --- *)

let test_bernoulli () =
  let rng = Rng.create ~seed:11 () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Dist.bernoulli ~p:0.3 rng then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.3" true (Float.abs (f -. 0.3) < 0.01);
  Alcotest.(check bool) "p=0 never" true (not (Dist.bernoulli ~p:0. rng));
  Alcotest.(check bool) "p=1 always" true (Dist.bernoulli ~p:1. rng)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:12 () in
  let n = 100_000 in
  let mu = mean_of n (Dist.gaussian ~mu:2. ~sigma:3.) rng in
  Alcotest.(check bool) "mean" true (Float.abs (mu -. 2.) < 0.05);
  let v = var_of n (Dist.gaussian ~sigma:3.) rng in
  Alcotest.(check bool) "variance" true (Float.abs (v -. 9.) < 0.3)

let test_gaussian_zero_sigma () =
  let rng = Rng.create ~seed:13 () in
  Alcotest.(check (float 0.)) "degenerate" 5. (Dist.gaussian ~mu:5. ~sigma:0. rng)

let test_laplace_moments () =
  let rng = Rng.create ~seed:14 () in
  let n = 200_000 in
  let b = 1.5 in
  let mu = mean_of n (Dist.laplace ~scale:b) rng in
  Alcotest.(check bool) "centered" true (Float.abs mu < 0.03);
  let v = var_of n (Dist.laplace ~scale:b) rng in
  (* Var = 2 b^2 = 4.5 *)
  Alcotest.(check bool) "variance 2b^2" true (Float.abs (v -. 4.5) < 0.25)

let test_exponential_mean () =
  let rng = Rng.create ~seed:15 () in
  let mu = mean_of 100_000 (Dist.exponential ~rate:4.) rng in
  Alcotest.(check bool) "mean 1/rate" true (Float.abs (mu -. 0.25) < 0.01)

let test_gumbel_location () =
  let rng = Rng.create ~seed:16 () in
  (* E[Gumbel] = Euler-Mascheroni constant. *)
  let mu = mean_of 200_000 (Dist.gumbel ?scale:None) rng in
  Alcotest.(check bool) "mean ~0.5772" true (Float.abs (mu -. 0.5772) < 0.02)

let test_geometric () =
  let rng = Rng.create ~seed:17 () in
  let p = 0.25 in
  let mu = mean_of 100_000 (fun r -> float_of_int (Dist.geometric ~p r)) rng in
  (* mean (failures before success) = (1-p)/p = 3 *)
  Alcotest.(check bool) "mean (1-p)/p" true (Float.abs (mu -. 3.) < 0.1);
  Alcotest.(check int) "p=1 is 0" 0 (Dist.geometric ~p:1. rng)

let test_binomial () =
  let rng = Rng.create ~seed:18 () in
  let mu = mean_of 20_000 (fun r -> float_of_int (Dist.binomial ~n:10 ~p:0.4 r)) rng in
  Alcotest.(check bool) "mean np" true (Float.abs (mu -. 4.) < 0.1)

let test_rademacher () =
  let rng = Rng.create ~seed:24 () in
  let pos = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Dist.rademacher rng in
    Alcotest.(check bool) "in {-1,+1}" true (v = 1. || v = -1.);
    if v = 1. then incr pos
  done;
  Alcotest.(check bool) "balanced" true
    (Float.abs ((float_of_int !pos /. float_of_int n) -. 0.5) < 0.01)

let test_gaussian_vector () =
  let rng = Rng.create ~seed:25 () in
  let v = Dist.gaussian_vector ~dim:5 ~sigma:2. rng in
  Alcotest.(check int) "dim" 5 (Array.length v);
  (* coordinates are iid: across many draws, empirical covariance of two
     coordinates should be near zero *)
  let n = 20_000 in
  let cov = ref 0. in
  for _ = 1 to n do
    let w = Dist.gaussian_vector ~dim:2 ~sigma:1. rng in
    cov := !cov +. (w.(0) *. w.(1))
  done;
  Alcotest.(check bool) "uncorrelated" true (Float.abs (!cov /. float_of_int n) < 0.02)

let test_categorical_frequencies () =
  let rng = Rng.create ~seed:19 () in
  let weights = [| 1.; 2.; 3.; 4. |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Dist.categorical ~weights rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10. in
      let f = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "matches weight" true (Float.abs (f -. expected) < 0.01))
    counts

let test_categorical_rejects_bad_weights () =
  let rng = Rng.create ~seed:20 () in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dist.categorical: weights must be non-negative") (fun () ->
      ignore (Dist.categorical ~weights:[| 1.; -1. |] rng));
  Alcotest.check_raises "zero sum"
    (Invalid_argument "Dist.categorical: weights must have a positive sum") (fun () ->
      ignore (Dist.categorical ~weights:[| 0.; 0. |] rng))

let test_alias_matches_categorical () =
  let rng = Rng.create ~seed:21 () in
  let weights = [| 0.1; 0.0; 5.; 2.; 0.9 |] in
  let alias = Dist.Alias.create weights in
  let counts = Array.make 5 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Dist.Alias.draw alias rng in
    counts.(i) <- counts.(i) + 1
  done;
  let total = Array.fold_left ( +. ) 0. weights in
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. total in
      let f = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "alias frequency" true (Float.abs (f -. expected) < 0.01))
    counts

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:22 () in
  let arr = Array.init 50 (fun i -> i) in
  Dist.shuffle arr rng;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:23 () in
  let s = Dist.sample_indices_without_replacement ~n:20 ~k:10 rng in
  Alcotest.(check int) "size" 10 (Array.length s);
  let seen = Hashtbl.create 10 in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "in range" true (i >= 0 && i < 20);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen i);
      Hashtbl.add seen i ())
    s

(* --- qcheck properties --- *)

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed ()  in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_swr_distinct =
  QCheck.Test.make ~name:"sample_without_replacement distinct" ~count:200
    QCheck.(pair small_int (int_range 0 50))
    (fun (seed, k) ->
      let rng = Rng.create ~seed () in
      let s = Dist.sample_indices_without_replacement ~n:50 ~k rng in
      let l = Array.to_list s in
      List.length (List.sort_uniq compare l) = k)

let qcheck_laplace_sign_symmetric =
  QCheck.Test.make ~name:"laplace with scale 0 is 0" ~count:100 QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed () in
      Dist.laplace ~scale:0. rng = 0.)

let () =
  Alcotest.run "pmw_rng"
    [
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_decorrelated;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_int_uniform;
          Alcotest.test_case "uniform interval" `Quick test_uniform_interval;
          Alcotest.test_case "splitmix stream" `Quick test_splitmix_known_stream;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "gaussian sigma=0" `Quick test_gaussian_zero_sigma;
          Alcotest.test_case "laplace moments" `Quick test_laplace_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "gumbel location" `Quick test_gumbel_location;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "rademacher" `Quick test_rademacher;
          Alcotest.test_case "gaussian vector" `Quick test_gaussian_vector;
          Alcotest.test_case "categorical freq" `Quick test_categorical_frequencies;
          Alcotest.test_case "categorical validation" `Quick test_categorical_rejects_bad_weights;
          Alcotest.test_case "alias method" `Quick test_alias_matches_categorical;
          Alcotest.test_case "shuffle" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_int_in_range; qcheck_swr_distinct; qcheck_laplace_sign_symmetric ] );
    ]
