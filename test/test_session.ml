(* Soak tests for the fault-tolerant session engine: every fault class
   (NaN/Inf answers, divergent solves, timeouts, misreported spends) is
   injected through Faulty_oracle, the session is killed mid-stream,
   resumed from a checkpoint that went through the text codec, and the
   verdict stream plus the final ledger must be identical to an
   uninterrupted run — with Budget.spent never exceeding Budget.total at
   any point under any fault. *)

module Universe = Pmw_data.Universe
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Online_pmw = Pmw_core.Online_pmw
module Budget = Pmw_core.Budget
module Oracle = Pmw_erm.Oracle
module Oracles = Pmw_erm.Oracles
module Faulty = Pmw_erm.Faulty_oracle
module Session = Pmw_session.Session
module Checkpoint = Pmw_session.Checkpoint
module Rng = Pmw_rng.Rng

let checkf tol = Alcotest.(check (float tol))

let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 ()
let domain = Domain.unit_ball ~dim:2
let privacy = Params.create ~eps:1. ~delta:1e-6

let dataset =
  Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000
    (Rng.create ~seed:7 ())

let config ?(alpha = 0.02) ?(k = 14) ?(t_max = 8) () =
  Config.practical ~universe ~privacy ~alpha ~beta:0.05 ~scale:2. ~k ~t_max ~solver_iters:120 ()

let queries k =
  List.init k (fun i ->
      match i mod 4 with
      | 0 -> Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ()
      | 1 -> Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ()
      | 2 -> Cm_query.make ~name:"abs" ~loss:(Losses.absolute ()) ~domain ()
      | _ -> Cm_query.make ~name:"q3" ~loss:(Losses.quantile ~tau:0.3 ()) ~domain ())

(* A comparable fingerprint of a verdict: kind, answer source, update index
   and the answer vector bit-for-bit ([%h]). *)
let vec_hex v = String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list v))

let outcome_str (o : Online_pmw.outcome) =
  Printf.sprintf "%s/%d/%s"
    (match o.Online_pmw.source with
    | Online_pmw.From_hypothesis -> "hyp"
    | Online_pmw.From_oracle -> "orc")
    o.Online_pmw.update_index (vec_hex o.Online_pmw.theta)

let verdict_str = function
  | Online_pmw.Answered o -> "A:" ^ outcome_str o
  | Online_pmw.Degraded (o, d) ->
      "D:" ^ outcome_str o ^ ":" ^ Online_pmw.degradation_to_string d
  | Online_pmw.Refused r -> "R:" ^ Online_pmw.refusal_to_string r

(* Answer a query stream, asserting after EVERY query that the ledger has
   not been driven past its cap; return the verdict fingerprints. *)
let run_stream s qs =
  List.map
    (fun q ->
      let v = Session.answer s q in
      let spent = Budget.spent (Session.budget s) in
      let total = Budget.total (Session.budget s) in
      Alcotest.(check bool) "eps spent <= total" true
        (spent.Params.eps <= total.Params.eps +. 1e-9);
      Alcotest.(check bool) "delta spent <= total" true
        (spent.Params.delta <= total.Params.delta +. 1e-15);
      verdict_str v)
    qs

let faulty_session ?(seed = 5) ~plan ~rng () =
  let f = Faulty.create ~seed ~plan (Oracles.noisy_gd ()) in
  let s =
    Session.create ~config:(config ()) ~dataset
      ~oracles:[ Faulty.oracle f; Oracles.output_perturbation ]
      ~spend_claim:(fun () -> Faulty.claimed_spend f)
      ~rng ()
  in
  (s, f)

(* --- the acceptance soak: kill/resume under each fault class --- *)

let soak fault () =
  let plan = Faulty.Every { period = 2; fault } in
  let qs = queries 14 in
  let kill_at = 6 in
  (* uninterrupted reference run *)
  let s0, f0 = faulty_session ~plan ~rng:(Rng.create ~seed:42 ()) () in
  let full = run_stream s0 qs in
  let spent0 = Budget.spent (Session.budget s0) in
  Alcotest.(check bool) "faults were actually injected" true (Faulty.injected f0 > 0);
  (* same session, killed after [kill_at] queries; only the serialized
     checkpoint text survives into the "new process" *)
  let s1, _ = faulty_session ~plan ~rng:(Rng.create ~seed:42 ()) () in
  let before = run_stream s1 (List.filteri (fun i _ -> i < kill_at) qs) in
  let blob = Checkpoint.to_string (Session.checkpoint s1) in
  let ckpt =
    match Checkpoint.of_string blob with Ok c -> c | Error e -> Alcotest.fail e
  in
  let f2 = Faulty.create ~seed:5 ~plan (Oracles.noisy_gd ()) in
  Faulty.set_calls f2 (Checkpoint.attempts_for ckpt (Faulty.oracle f2).Oracle.name);
  let s2 =
    match
      Session.resume ~config:(config ()) ~dataset
        ~oracles:[ Faulty.oracle f2; Oracles.output_perturbation ]
        ~spend_claim:(fun () -> Faulty.claimed_spend f2)
        ~rng:(Rng.create ~seed:999 ()) (* overwritten by the checkpoint *)
        ckpt
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let after = run_stream s2 (List.filteri (fun i _ -> i >= kill_at) qs) in
  Alcotest.(check (list string)) "identical verdict stream" full (before @ after);
  let spent2 = Budget.spent (Session.budget s2) in
  checkf 0. "identical final eps spend" spent0.Params.eps spent2.Params.eps;
  checkf 0. "identical final delta spend" spent0.Params.delta spent2.Params.delta

(* --- misreports can never overdraw the ledger --- *)

let test_misreport_cannot_overdraw () =
  let plan = Faulty.Always (Faulty.Misreport 1e6) in
  let s, f = faulty_session ~plan ~rng:(Rng.create ~seed:11 ()) () in
  ignore (run_stream s (queries 14));
  Alcotest.(check bool) "faults injected" true (Faulty.injected f > 0);
  Alcotest.(check bool) "ledger breached" true (Session.breached s);
  Alcotest.(check bool) "pot drained, not overdrawn" true
    (Budget.exhausted (Session.budget s));
  Alcotest.(check bool) "stream degraded instead of crashing" true
    (Session.degraded_answers s > 0)

(* --- every oracle down: degrade to the frozen hypothesis, keep debiting --- *)

let test_all_oracles_down_degrades () =
  let f = Faulty.create ~seed:1 ~plan:(Faulty.Always Faulty.Nan_answer) (Oracles.noisy_gd ()) in
  let s =
    Session.create ~config:(config ()) ~dataset
      ~oracles:[ Faulty.oracle f ]
      ~rng:(Rng.create ~seed:8 ()) ()
  in
  let vs = List.map (Session.answer s) (queries 10) in
  List.iter
    (function
      | Online_pmw.Answered { Online_pmw.source = Online_pmw.From_hypothesis; _ }
      | Online_pmw.Degraded (_, _) ->
          ()
      | v -> Alcotest.fail ("unexpected verdict: " ^ verdict_str v))
    vs;
  Alcotest.(check bool) "some answers degraded" true (Session.degraded_answers s > 0);
  (* failed attempts still consumed their allocation beyond the SV half *)
  let sv = (config ()).Config.sv_privacy in
  Alcotest.(check bool) "failed attempts debited" true
    ((Budget.spent (Session.budget s)).Params.eps > sv.Params.eps)

(* --- parallel pool: the session's answers are bit-identical across pool
   sizes, and a checkpoint taken under one pool resumes exactly under
   another (the determinism contract of Pmw_parallel.Pool) --- *)

let test_pool_invariance_and_cross_pool_resume () =
  let qs = queries 10 in
  let kill_at = 5 in
  let pool1 = Pmw_parallel.Pool.create ~domains:1 () in
  let pool4 = Pmw_parallel.Pool.create ~domains:4 () in
  let fresh pool = Session.create ~pool ~config:(config ()) ~dataset ~rng:(Rng.create ~seed:42 ()) () in
  let full1 = run_stream (fresh pool1) qs in
  let full4 = run_stream (fresh pool4) qs in
  Alcotest.(check (list string)) "pool-1 and pool-4 verdict streams bit-identical" full1 full4;
  (* kill after [kill_at] queries under pool-4; resume the serialized
     checkpoint under pool-1 — the continuation must be bit-identical to
     the uninterrupted run *)
  let s_a = fresh pool4 in
  let before = run_stream s_a (List.filteri (fun i _ -> i < kill_at) qs) in
  let blob = Checkpoint.to_string (Session.checkpoint s_a) in
  let ckpt = match Checkpoint.of_string blob with Ok c -> c | Error e -> Alcotest.fail e in
  let s_b =
    match
      Session.resume ~pool:pool1 ~config:(config ()) ~dataset ~rng:(Rng.create ~seed:999 ()) ckpt
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let after = run_stream s_b (List.filteri (fun i _ -> i >= kill_at) qs) in
  Alcotest.(check (list string)) "resume across pool sizes is bit-identical" full1
    (before @ after);
  Pmw_parallel.Pool.shutdown pool4;
  Pmw_parallel.Pool.shutdown pool1

(* --- checkpoint codec --- *)

let test_checkpoint_roundtrip () =
  let s, _ = faulty_session ~plan:Faulty.Never ~rng:(Rng.create ~seed:3 ()) () in
  ignore (run_stream s (queries 5));
  let c = Session.checkpoint s in
  (match Checkpoint.of_string (Checkpoint.to_string c) with
  | Ok c2 -> Alcotest.(check bool) "round-trip equal" true (c = c2)
  | Error e -> Alcotest.fail e);
  (* file round-trip, via the atomic writer *)
  let path = Filename.temp_file "pmw" ".ckpt" in
  Checkpoint.write ~path c;
  (match Checkpoint.read ~path with
  | Ok c2 -> Alcotest.(check bool) "file round-trip equal" true (c = c2)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_checkpoint_rejects_corruption () =
  let s, _ = faulty_session ~plan:Faulty.Never ~rng:(Rng.create ~seed:3 ()) () in
  ignore (run_stream s (queries 3));
  let blob = Checkpoint.to_string (Session.checkpoint s) in
  let b = Bytes.of_string blob in
  let i = Bytes.length b - 2 in
  Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
  (match Checkpoint.of_string (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted checkpoint accepted");
  match Checkpoint.of_string "pmw-session-checkpoint 999\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong version accepted"

let test_resume_rejects_config_mismatch () =
  let s, _ = faulty_session ~plan:Faulty.Never ~rng:(Rng.create ~seed:3 ()) () in
  ignore (run_stream s (queries 3));
  let ckpt = Session.checkpoint s in
  match
    Session.resume ~config:(config ~alpha:0.05 ()) ~dataset ~rng:(Rng.create ~seed:3 ()) ckpt
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume accepted a mismatched config"

(* --- fault plans are pure in (seed, index): replay equals one shot --- *)

let test_fault_plan_replay () =
  let mk () = Faulty.create ~seed:33 ~plan:(Faulty.Random { rate = 0.5; faults = [ Faulty.Timeout ] })
      (Oracles.exact)
  in
  let req =
    {
      Oracle.dataset;
      loss = Losses.squared ();
      domain;
      privacy = Params.create ~eps:0.5 ~delta:1e-7;
      rng = Rng.create ~seed:2 ();
      solver_iters = 50;
    }
  in
  let pattern f n =
    List.init n (fun _ ->
        match (Faulty.oracle f).Oracle.run req with
        | _ -> false
        | exception Oracle.Timeout _ -> true)
  in
  let a = pattern (mk ()) 20 in
  (* second wrapper fast-forwarded halfway must reproduce the tail *)
  let f2 = mk () in
  let head = pattern f2 10 in
  let f3 = mk () in
  Faulty.set_calls f3 10;
  let tail = pattern f3 10 in
  Alcotest.(check (list bool)) "replayed pattern" a (head @ tail);
  Alcotest.(check bool) "some faults fired" true (List.exists Fun.id a)

(* --- exit status and the centralized telemetry tallies --- *)

module Telemetry = Pmw_telemetry.Telemetry

let test_exit_status_clean () =
  let s, _ = faulty_session ~plan:Faulty.Never ~rng:(Rng.create ~seed:3 ()) () in
  ignore (run_stream s (queries 4));
  match Session.exit_status s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "clean session reported %S" why

let test_exit_status_breached () =
  let s, _ =
    faulty_session ~plan:(Faulty.Always (Faulty.Misreport 1e6)) ~rng:(Rng.create ~seed:11 ()) ()
  in
  ignore (run_stream s (queries 8));
  Alcotest.(check bool) "breached" true (Session.breached s);
  match Session.exit_status s with
  | Ok () -> Alcotest.fail "breached session must exit non-zero"
  | Error why ->
      Alcotest.(check bool) ("reason mentions breach: " ^ why) true
        (let rec has i =
           i + 8 <= String.length why && (String.sub why i 8 = "breached" || has (i + 1))
         in
         has 0)

let test_tallies_are_telemetry_counters () =
  (* The session keeps NO private verdict counters: its accessors read the
     telemetry instance, with or without a sink. *)
  let s, _ =
    faulty_session ~plan:(Faulty.Every { period = 2; fault = Faulty.Timeout })
      ~rng:(Rng.create ~seed:21 ()) ()
  in
  ignore (run_stream s (queries 9));
  let tel = Session.telemetry s in
  Alcotest.(check int) "queries" (Session.queries s) (Telemetry.counter tel "queries");
  Alcotest.(check int) "degraded" (Session.degraded_answers s)
    (Telemetry.counter tel "degraded_answers");
  Alcotest.(check int) "refused" (Session.refusals s) (Telemetry.counter tel "refusals");
  Alcotest.(check int) "sum" (Session.queries s)
    (Session.answered s + Session.degraded_answers s + Session.refusals s)

let test_resume_restores_trace_state () =
  (* A resumed trace continues the killed one: counters restored, round
     numbering continued, and a session.restart mark separates the lives. *)
  let kill_at = 5 in
  let qs = queries 8 in
  let s1, _ = faulty_session ~plan:Faulty.Never ~rng:(Rng.create ~seed:42 ()) () in
  ignore (run_stream s1 (List.filteri (fun i _ -> i < kill_at) qs));
  let ckpt = Session.checkpoint s1 in
  let tel = Telemetry.create ~sink:(Telemetry.Sink.ring ()) () in
  let s2 =
    match
      Session.resume ~telemetry:tel ~config:(config ()) ~dataset
        ~rng:(Rng.create ~seed:999 ()) ckpt
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "queries restored" kill_at (Session.queries s2);
  Alcotest.(check int) "answered restored" (Session.answered s1) (Session.answered s2);
  Alcotest.(check int) "round continued" kill_at (Telemetry.round tel);
  let restarts =
    List.filter (fun e -> e.Telemetry.name = "session.restart") (Telemetry.events tel)
  in
  Alcotest.(check int) "one restart mark" 1 (List.length restarts);
  (match List.assoc_opt "queries" (List.hd restarts).Telemetry.fields with
  | Some (Telemetry.Int q) -> Alcotest.(check int) "restart mark carries queries" kill_at q
  | _ -> Alcotest.fail "restart mark must carry the replayed query count");
  (* the next query gets round kill_at + 1 — numbering never restarts at 1 *)
  ignore (Session.answer s2 (List.nth qs kill_at));
  Alcotest.(check int) "next round" (kill_at + 1) (Telemetry.round tel)

let () =
  Alcotest.run "pmw_session"
    [
      ( "soak",
        [
          Alcotest.test_case "nan gradient" `Slow (soak Faulty.Nan_answer);
          Alcotest.test_case "inf gradient" `Slow (soak Faulty.Inf_answer);
          Alcotest.test_case "divergent solve" `Slow (soak Faulty.Divergent);
          Alcotest.test_case "timeout" `Slow (soak Faulty.Timeout);
          Alcotest.test_case "misreport" `Slow (soak (Faulty.Misreport 3.));
        ] );
      ( "ledger",
        [
          Alcotest.test_case "misreport cannot overdraw" `Quick test_misreport_cannot_overdraw;
          Alcotest.test_case "all oracles down" `Quick test_all_oracles_down_degrades;
        ] );
      ( "parallel pool",
        [
          Alcotest.test_case "bit-identical across pools, cross-pool resume" `Quick
            test_pool_invariance_and_cross_pool_resume;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_checkpoint_rejects_corruption;
          Alcotest.test_case "rejects config mismatch" `Quick test_resume_rejects_config_mismatch;
        ] );
      ( "faulty oracle",
        [ Alcotest.test_case "plan replay" `Quick test_fault_plan_replay ] );
      ( "telemetry",
        [
          Alcotest.test_case "exit status clean" `Quick test_exit_status_clean;
          Alcotest.test_case "exit status breached" `Quick test_exit_status_breached;
          Alcotest.test_case "tallies are telemetry counters" `Quick
            test_tallies_are_telemetry_counters;
          Alcotest.test_case "resume restores trace state" `Quick
            test_resume_restores_trace_state;
        ] );
    ]
