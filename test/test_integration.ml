(* End-to-end integration tests: full Figure 3 runs with real oracles on
   synthetic workloads, the adaptive accuracy game, privacy accounting across
   the whole interaction, an empirical privacy audit of the sparse-vector
   answer stream, and online-vs-offline consistency. *)

module Vec = Pmw_linalg.Vec
module Point = Pmw_data.Point
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Sv = Pmw_dp.Sparse_vector
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Online_pmw = Pmw_core.Online_pmw
module Offline_pmw = Pmw_core.Offline_pmw
module Analyst = Pmw_core.Analyst
module Rng = Pmw_rng.Rng

let privacy = Params.create ~eps:1. ~delta:1e-6

(* --- full pipeline with the noisy-GD oracle --- *)

let test_full_pipeline_regression () =
  let rng = Rng.create ~seed:91 () in
  let universe = Universe.regression_grid ~d:2 ~levels:7 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.6; -0.3 |] ~noise:0.1 ~n:250_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let k = 18 in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.06 ~beta:0.05 ~scale:2. ~k ~t_max:25
      ~solver_iters:200 ()
  in
  let mechanism =
    Online_pmw.create ~config ~dataset ~oracle:(Pmw_erm.Oracles.noisy_gd ()) ~rng ()
  in
  let queries =
    [
      Cm_query.make ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
      Cm_query.make ~loss:(Losses.quantile ~tau:0.6 ()) ~domain ();
      Cm_query.make ~loss:(Losses.feature_mask [| true; false |] (Losses.squared ())) ~domain ();
      Cm_query.make ~loss:(Losses.feature_mask [| false; true |] (Losses.squared ())) ~domain ();
    ]
  in
  let analyst = Analyst.cycle ~name:"panel" queries ~k in
  let records =
    Analyst.run ~analyst ~k
      ~answer:(fun q -> Option.map (fun o -> o.Online_pmw.theta) (Online_pmw.answer_opt mechanism q))
      ~dataset ~solver_iters:400 ()
  in
  Alcotest.(check int) "all k rounds answered" k (Analyst.answered records);
  let max_err = Analyst.max_error records in
  (* alpha target plus oracle noise slack *)
  Alcotest.(check bool) (Printf.sprintf "max err %.4f acceptable" max_err) true (max_err < 0.12);
  Alcotest.(check bool) "mechanism did not exhaust updates" true
    (Online_pmw.updates mechanism < config.Config.t_max)

let test_full_pipeline_classification_glm () =
  let rng = Rng.create ~seed:92 () in
  let d = 5 in
  let universe = Universe.labeled_hypercube ~d ~labels:[| -1.; 1. |] () in
  let theta_star = Synth.random_unit_vector ~dim:d rng in
  let dataset =
    Synth.logistic_classification ~universe ~theta_star ~margin:4. ~n:250_000 rng
  in
  let domain = Domain.unit_ball ~dim:d in
  let k = 12 in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.06 ~beta:0.05 ~scale:2. ~k ~t_max:20
      ~solver_iters:200 ()
  in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle:(Pmw_erm.Oracles.glm ()) ~rng () in
  let queries =
    [
      Cm_query.make ~loss:(Losses.logistic ()) ~domain ();
      Cm_query.make ~loss:(Losses.hinge ()) ~domain ();
      Cm_query.make ~loss:(Losses.squared_margin ()) ~domain ();
    ]
  in
  let analyst = Analyst.cycle ~name:"classifiers" queries ~k in
  let records =
    Analyst.run ~analyst ~k
      ~answer:(fun q -> Option.map (fun o -> o.Online_pmw.theta) (Online_pmw.answer_opt mechanism q))
      ~dataset ~solver_iters:400 ()
  in
  Alcotest.(check int) "all answered" k (Analyst.answered records);
  Alcotest.(check bool)
    (Printf.sprintf "max err %.4f acceptable" (Analyst.max_error records))
    true
    (Analyst.max_error records < 0.12)

(* --- adaptivity: answers must remain accurate when queries depend on them --- *)

let test_adaptive_game_stays_accurate () =
  let rng = Rng.create ~seed:93 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.4; 0.3 |] ~noise:0.1 ~n:200_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let k = 10 in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.07 ~beta:0.05 ~scale:2. ~k ~t_max:15
      ~solver_iters:200 ()
  in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng () in
  (* the analyst alternates quantile levels steered by the previous answer's
     first coordinate — a simple feedback loop through the mechanism *)
  let analyst =
    Analyst.adaptive ~name:"feedback" (fun ~round ~history ->
        if round >= k then None
        else
          let tau =
            match history with
            | { Analyst.answer = Some theta; _ } :: _ ->
                if theta.(0) > 0.2 then 0.3 else 0.7
            | _ -> 0.5
          in
          Some (Cm_query.make ~loss:(Losses.quantile ~tau ()) ~domain ()))
  in
  let records =
    Analyst.run ~analyst ~k
      ~answer:(fun q -> Option.map (fun o -> o.Online_pmw.theta) (Online_pmw.answer_opt mechanism q))
      ~dataset ~solver_iters:400 ()
  in
  Alcotest.(check int) "all adaptive rounds answered" k (Analyst.answered records);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive max err %.4f" (Analyst.max_error records))
    true
    (Analyst.max_error records < 0.1)

(* --- privacy accounting across the interaction --- *)

let test_total_privacy_within_budget () =
  let rng = Rng.create ~seed:94 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.4; 0.3 |] ~noise:0.1 ~n:150_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.03 ~beta:0.05 ~scale:2. ~k:30 ~t_max:12
      ~solver_iters:150 ()
  in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng () in
  let q = Cm_query.make ~loss:(Losses.squared ()) ~domain () in
  let q2 = Cm_query.make ~loss:(Losses.absolute ()) ~domain () in
  for i = 1 to 30 do
    ignore (Online_pmw.answer mechanism (if i mod 2 = 0 then q else q2))
  done;
  (* Oracle side: T-fold advanced composition of the per-call budget must fit
     in the eps/2 half. *)
  let a = Online_pmw.oracle_accountant mechanism in
  if Pmw_dp.Accountant.count a > 0 then begin
    let total =
      Pmw_dp.Accountant.total_advanced a ~slack:(config.Config.privacy.Params.delta /. 4.)
    in
    Alcotest.(check bool)
      (Printf.sprintf "oracle eps %.4f <= eps/2" total.Params.eps)
      true
      (total.Params.eps <= (config.Config.privacy.Params.eps /. 2.) +. 1e-9)
  end;
  (* SV side was constructed with eps/2 by the config. *)
  Alcotest.(check bool) "sv half" true
    (config.Config.sv_privacy.Params.eps = config.Config.privacy.Params.eps /. 2.)

(* --- empirical privacy audit of the sparse-vector stream (experiment F4's
   core, in miniature): the probability of any particular answer prefix on
   adjacent inputs should differ by at most e^eps (+ delta slack); we
   estimate the worst log-ratio over prefixes of one Top/Bottom pattern. --- *)

let test_sv_empirical_privacy () =
  let trials = 4000 in
  let eps = 0.8 in
  let sensitivity = 0.05 in
  (* Two adjacent "datasets" induce query-value streams differing by exactly
     the sensitivity on every query — the worst case. *)
  let stream_a = [| 0.9; 0.4; 0.75; 0.2 |] in
  let stream_b = Array.map (fun v -> v +. sensitivity) stream_a in
  let count stream =
    (* count how often the full answer pattern is (Top, Bottom, Top, Bottom) *)
    let hits = ref 0 in
    for seed = 1 to trials do
      let sv =
        Sv.create ~t_max:3 ~k:10 ~threshold:1.
          ~privacy:(Params.create ~eps ~delta:1e-6)
          ~sensitivity
          ~rng:(Rng.create ~seed ())
          ()
      in
      let answers = Array.map (fun v -> Sv.query sv v) stream in
      if
        answers = [| Some Sv.Top; Some Sv.Bottom; Some Sv.Top; Some Sv.Bottom |]
      then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  let pa = count stream_a and pb = count stream_b in
  if pa > 0.01 && pb > 0.01 then begin
    let ratio = Float.abs (log (pa /. pb)) in
    (* generous statistical slack on top of eps *)
    Alcotest.(check bool)
      (Printf.sprintf "log ratio %.3f <= eps + slack" ratio)
      true (ratio <= eps +. 0.5)
  end

(* --- online vs offline consistency --- *)

let test_online_offline_agree () =
  let rng = Rng.create ~seed:95 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:150_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let queries =
    [|
      Cm_query.make ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
    |]
  in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.08 ~beta:0.05 ~scale:2.
      ~k:(Array.length queries) ~t_max:12 ~solver_iters:200 ()
  in
  let offline =
    Offline_pmw.run ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~queries ~rng ()
  in
  let online = Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng () in
  Array.iteri
    (fun i q ->
      let off_err = Cm_query.err_answer ~iters:600 q dataset offline.Offline_pmw.answers.(i) in
      match Online_pmw.answer_opt online q with
      | None -> Alcotest.fail "online halted"
      | Some o ->
          let on_err = Cm_query.err_answer ~iters:600 q dataset o.Online_pmw.theta in
          Alcotest.(check bool)
            (Printf.sprintf "both accurate (off %.4f, on %.4f)" off_err on_err)
            true
            (off_err < 0.12 && on_err < 0.12))
    queries

(* --- the final hypothesis is usable synthetic data (Section 4.3) --- *)

let test_hypothesis_as_synthetic_data () =
  let rng = Rng.create ~seed:96 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:150_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.04 ~beta:0.05 ~scale:2. ~k:40 ~t_max:20
      ~solver_iters:200 ()
  in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng () in
  let q = Cm_query.make ~loss:(Losses.squared ()) ~domain () in
  for _ = 1 to 8 do
    ignore (Online_pmw.answer_opt mechanism q)
  done;
  (* Sampling a synthetic dataset from the hypothesis and re-answering the
     query must land near the hypothesis answer (self-consistency). *)
  let hyp = Online_pmw.hypothesis mechanism in
  let synthetic = Dataset.of_histogram ~n:50_000 hyp rng in
  let from_hyp = (Cm_query.minimize_on_histogram ~iters:400 q hyp).Pmw_convex.Solve.theta in
  let from_synth = (Cm_query.minimize_on_dataset ~iters:400 q synthetic).Pmw_convex.Solve.theta in
  let hyp_obj = Cm_query.loss_on_histogram q hyp in
  Alcotest.(check bool) "synthetic data reproduces the hypothesis answer" true
    (Float.abs (hyp_obj from_synth -. hyp_obj from_hyp) < 0.01)

(* --- an adversarial analyst that re-asks the mechanism's worst query --- *)

let test_adversarial_analyst_stays_accurate () =
  let rng = Rng.create ~seed:97 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:200_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let pool =
    [
      Cm_query.make ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
      Cm_query.make ~loss:(Losses.quantile ~tau:0.8 ()) ~domain ();
      Cm_query.make ~loss:(Losses.huber ~delta:0.3 ()) ~domain ();
    ]
  in
  let k = 16 in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.07 ~beta:0.05 ~scale:2. ~k ~t_max:20
      ~solver_iters:200 ()
  in
  let mechanism = Online_pmw.create ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~rng () in
  let analyst = Analyst.greedy_hardest ~name:"adversary" pool ~k in
  let records =
    Analyst.run ~analyst ~k
      ~answer:(fun q -> Option.map (fun o -> o.Online_pmw.theta) (Online_pmw.answer_opt mechanism q))
      ~dataset ~solver_iters:400 ()
  in
  Alcotest.(check int) "all adversarial rounds answered" k (Analyst.answered records);
  Alcotest.(check bool)
    (Printf.sprintf "adversarial max err %.4f" (Analyst.max_error records))
    true
    (Analyst.max_error records < 0.1)

(* --- offline PMW with the permute-and-flip selector --- *)

let test_offline_permute_and_flip () =
  let rng = Rng.create ~seed:98 () in
  let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let dataset =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:120_000 rng
  in
  let domain = Domain.unit_ball ~dim:2 in
  let queries =
    [|
      Cm_query.make ~loss:(Losses.squared ()) ~domain ();
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
    |]
  in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.08 ~beta:0.05 ~scale:2.
      ~k:(Array.length queries) ~t_max:10 ~solver_iters:200 ()
  in
  let report =
    Offline_pmw.run ~config ~dataset ~oracle:Pmw_erm.Oracles.exact ~queries
      ~selector:Offline_pmw.Permute_and_flip ~rng ()
  in
  Array.iteri
    (fun i theta ->
      let err = Cm_query.err_answer ~iters:600 queries.(i) dataset theta in
      Alcotest.(check bool) (Printf.sprintf "P&F query %d err %.4f" i err) true (err < 0.12))
    report.Offline_pmw.answers

(* --- the umbrella library exposes the full API --- *)

let test_umbrella_namespace () =
  (* exercise one symbol from each re-exported module group end-to-end *)
  let rng = Pmw.Rng.create ~seed:7 () in
  let universe = Pmw.Universe.hypercube ~d:3 () in
  let histogram = Pmw.Histogram.uniform universe in
  let dataset = Pmw.Dataset.of_histogram ~n:500 histogram rng in
  let loss = Pmw.Losses.logistic () in
  let domain = Pmw.Domain.unit_ball ~dim:3 in
  let query = Pmw.Cm_query.make ~loss ~domain () in
  let config =
    Pmw.Config.practical ~universe
      ~privacy:(Pmw.Params.create ~eps:1. ~delta:1e-6)
      ~alpha:0.2 ~beta:0.1 ~scale:2. ~k:2 ~t_max:3 ~solver_iters:50 ()
  in
  let mechanism =
    Pmw.Online_pmw.create ~config ~dataset ~oracle:(Pmw.Oracles.glm ()) ~rng ()
  in
  (match Pmw.Online_pmw.answer_opt mechanism query with
  | Some o -> Alcotest.(check bool) "feasible" true (Pmw.Domain.contains ~tol:1e-6 domain o.Pmw.Online_pmw.theta)
  | None -> Alcotest.fail "halted");
  Alcotest.(check bool) "theory accessible" true
    (Pmw.Theory.linear_single (Pmw.Theory.default ~alpha:0.1 ~log_universe:3.) > 0.)

let () =
  Alcotest.run "pmw_integration"
    [
      ("umbrella", [ Alcotest.test_case "namespace" `Quick test_umbrella_namespace ]);
      ( "end-to-end",
        [
          Alcotest.test_case "regression pipeline" `Slow test_full_pipeline_regression;
          Alcotest.test_case "classification pipeline" `Slow test_full_pipeline_classification_glm;
          Alcotest.test_case "adaptive game" `Slow test_adaptive_game_stays_accurate;
          Alcotest.test_case "adversarial analyst" `Slow test_adversarial_analyst_stays_accurate;
          Alcotest.test_case "offline permute-and-flip" `Slow test_offline_permute_and_flip;
        ] );
      ( "privacy",
        [
          Alcotest.test_case "budget accounting" `Quick test_total_privacy_within_budget;
          Alcotest.test_case "sv empirical audit" `Slow test_sv_empirical_privacy;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "online vs offline" `Slow test_online_offline_agree;
          Alcotest.test_case "synthetic data" `Slow test_hypothesis_as_synthetic_data;
        ] );
    ]
