(* Tests for crash-safe epoch transitions (lib/server/epoch.ml): the
   snapshot wire format rejects any torn or edited bytes, the recovery
   decision table maps every (snapshot epoch, journal epoch) combination
   to exactly one whole generation, and a fuzz corpus of interrupted
   compactions — torn tails, garbage lines, short writes at every swap
   step — always recovers to exactly the old or the new journal with the
   lifetime privacy account preserved (zero double-spend, zero lost
   spend). *)

module Epoch = Pmw_server.Epoch
module Journal = Pmw_server.Journal
module Checkpoint = Pmw_session.Checkpoint

let tmp_dir () =
  let d = Filename.temp_file "pmw-epoch" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let journal_string records =
  String.concat "" (List.map (fun r -> Journal.record_to_string r ^ "\n") records)

let debit cum_e cum_d =
  Journal.Debit
    { jd_mechanism = "serve"; jd_eps = 0.1; jd_delta = 1e-8; jd_cum_eps = cum_e; jd_cum_delta = cum_d }

let answer seq rid =
  Journal.Answer { ja_seq = seq; ja_analyst = "an"; ja_rid = Some rid; ja_line = "resp" ^ rid }

(* a mid-epoch journal: generation [epoch] with some spend and answers *)
let live_journal ~epoch ~base:(be, bd) =
  (if epoch > 0 then
     [ Journal.Epoch { je_epoch = epoch; je_base_eps = be; je_base_delta = bd; je_seq = 10 } ]
   else [])
  @ [
      Journal.Mark "boot";
      debit 0.1 1e-8;
      answer 10 "r1";
      debit 0.2 2e-8;
      answer 11 "r2";
    ]

let snapshot ~epoch ~base:(be, bd) =
  {
    Epoch.sn_epoch = epoch;
    sn_seq = 10;
    sn_base_eps = be;
    sn_base_delta = bd;
    sn_absorbed = [| 3; 7; 7 |];
    sn_prior = Some [| 0.25; 0.5; 0.25 |];
    sn_dedup = [ (("an", "r0"), "respr0") ];
    sn_ckpt = None;
  }

let recover_ok ~what ~snapshot_path ~journal_path =
  match Epoch.recover ~snapshot_path ~journal_path with
  | Ok boot -> boot
  | Error e -> Alcotest.failf "%s: recovery failed: %s" what e

(* lifetime (ε, δ) a journal accounts for: sealed base + live cumulative *)
let lifetime rv =
  let be, bd = rv.Journal.rv_base and ce, cd = rv.Journal.rv_cum in
  (be +. ce, bd +. cd)

let close_boot boot = Journal.close boot.Epoch.bt_journal

(* --- snapshot wire format --- *)

let ident = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

let gen_snapshot =
  QCheck.Gen.(
    let* sn_epoch = int_range 0 40 and* sn_seq = int_bound 500 in
    let* sn_base_eps = float_bound_inclusive 50. and* sn_base_delta = float_bound_inclusive 1e-4 in
    let* sn_absorbed = array_size (int_bound 12) (int_bound 1000) in
    let* sn_prior = option (array_size (int_range 1 8) (float_bound_inclusive 1.)) in
    let* sn_dedup =
      list_size (int_bound 6)
        (let* analyst = ident and* rid = ident and* line = ident in
         return ((analyst, rid), line))
    in
    let* sn_ckpt = option ident in
    return
      { Epoch.sn_epoch; sn_seq; sn_base_eps; sn_base_delta; sn_absorbed; sn_prior; sn_dedup; sn_ckpt })

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshots survive the wire format" ~count:300
    (QCheck.make ~print:Epoch.snapshot_to_string gen_snapshot)
    (fun sn ->
      match Epoch.snapshot_of_string (Epoch.snapshot_to_string sn) with
      | Ok sn' -> sn' = sn
      | Error e -> QCheck.Test.fail_reportf "roundtrip failed: %s" e)

let qcheck_snapshot_torn =
  QCheck.Test.make ~name:"any truncated snapshot is rejected" ~count:200
    (QCheck.make
       ~print:(fun (sn, cut) -> Printf.sprintf "cut at %d of:\n%s" cut (Epoch.snapshot_to_string sn))
       QCheck.Gen.(
         let* sn = gen_snapshot in
         let s = Epoch.snapshot_to_string sn in
         let* cut = int_bound (String.length s - 1) in
         return (sn, cut)))
    (fun (sn, cut) ->
      match Epoch.snapshot_of_string (String.sub (Epoch.snapshot_to_string sn) 0 cut) with
      | Error _ -> true
      | Ok sn' ->
          (* a prefix may only parse if it decodes to the identical value
             (e.g. cutting inside a trailing optional checkpoint of length
             0 is impossible; anything else must not silently parse) *)
          QCheck.Test.fail_reportf "torn snapshot parsed: %s" (Epoch.snapshot_to_string sn'))

let qcheck_snapshot_corrupt =
  QCheck.Test.make ~name:"any single-byte edit to the body is rejected" ~count:200
    (QCheck.make
       ~print:(fun (sn, at) -> Printf.sprintf "flip at %d of:\n%s" at (Epoch.snapshot_to_string sn))
       QCheck.Gen.(
         let* sn = gen_snapshot in
         let s = Epoch.snapshot_to_string sn in
         (* only flip body bytes (after the checksum line) *)
         let body_at = String.index_from s (String.index s '\n' + 1) '\n' + 1 in
         let* at = int_range body_at (String.length s - 1) in
         return (sn, at)))
    (fun (sn, at) ->
      let s = Bytes.of_string (Epoch.snapshot_to_string sn) in
      Bytes.set s at (if Bytes.get s at = 'x' then 'y' else 'x');
      match Epoch.snapshot_of_string (Bytes.to_string s) with
      | Error _ -> true
      | Ok sn' -> sn' = sn (* a flip inside e.g. "+0x0p" noise must decode identically *))

let test_snapshot_file_roundtrip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "snap.epoch" in
  (match Epoch.read_snapshot ~path with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "missing snapshot read as Some"
  | Error e -> Alcotest.failf "missing snapshot should be Ok None: %s" e);
  let sn = snapshot ~epoch:3 ~base:(1.5, 2e-7) in
  Epoch.write_snapshot ~path sn;
  (match Epoch.read_snapshot ~path with
  | Ok (Some sn') -> Alcotest.(check bool) "snapshot file roundtrip" true (sn' = sn)
  | Ok None -> Alcotest.fail "written snapshot reads as None"
  | Error e -> Alcotest.failf "written snapshot unreadable: %s" e);
  Alcotest.(check bool) "no tmp left behind" false (Sys.file_exists (path ^ ".tmp"))

(* --- compaction --- *)

let test_compact_single_record () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.wal" in
  write_file path (journal_string (live_journal ~epoch:0 ~base:(0., 0.)));
  Epoch.compact ~journal_path:path ~epoch:1 ~base:(0.2, 2e-8) ~seq:12;
  let check_compacted what =
    match Journal.replay_string (read_file path) with
    | Error e -> Alcotest.failf "%s: compacted journal unreadable: %s" what e
    | Ok rv ->
        Alcotest.(check int) (what ^ ": one record") 1 (List.length rv.Journal.rv_records);
        Alcotest.(check int) (what ^ ": epoch") 1 rv.Journal.rv_epoch;
        Alcotest.(check bool) (what ^ ": lifetime preserved") true (lifetime rv = (0.2, 2e-8));
        Alcotest.(check int) (what ^ ": seq carried") 11 rv.Journal.rv_max_seq
  in
  check_compacted "first";
  (* idempotent: exactly what roll-forward recovery redoes *)
  Epoch.compact ~journal_path:path ~epoch:1 ~base:(0.2, 2e-8) ~seq:12;
  check_compacted "redone"

(* --- recovery decision table --- *)

let test_recover_fresh () =
  let dir = tmp_dir () in
  let boot =
    recover_ok ~what:"fresh" ~snapshot_path:(Filename.concat dir "s.epoch")
      ~journal_path:(Filename.concat dir "j.wal")
  in
  Alcotest.(check int) "epoch 0" 0 boot.Epoch.bt_epoch;
  Alcotest.(check bool) "no base" true (boot.Epoch.bt_base = (0., 0.));
  Alcotest.(check bool) "no seal" true (boot.Epoch.bt_seal = None);
  Alcotest.(check bool) "not rolled forward" false boot.Epoch.bt_rolled_forward;
  close_boot boot

let test_recover_in_epoch () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:2 ~base:(1.0, 1e-7));
  write_file jp (journal_string (live_journal ~epoch:2 ~base:(1.0, 1e-7)));
  let boot = recover_ok ~what:"in-epoch" ~snapshot_path:sp ~journal_path:jp in
  Alcotest.(check int) "epoch from both" 2 boot.Epoch.bt_epoch;
  Alcotest.(check bool) "base from snapshot" true (boot.Epoch.bt_base = (1.0, 1e-7));
  Alcotest.(check bool) "absorbed carried" true (boot.Epoch.bt_absorbed = [| 3; 7; 7 |]);
  Alcotest.(check bool) "dedup seed carried" true
    (boot.Epoch.bt_dedup = [ (("an", "r0"), "respr0") ]);
  Alcotest.(check bool) "not rolled forward" false boot.Epoch.bt_rolled_forward;
  Alcotest.(check bool) "journal records kept" true
    (List.length boot.Epoch.bt_recovery.Journal.rv_records >= 5);
  close_boot boot

let test_recover_roll_forward () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  (* the snapshot committed epoch 1 but the journal is still the old
     generation (no Epoch record), with a seal left behind *)
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:1 ~base:(0.2, 2e-8));
  write_file jp (journal_string (live_journal ~epoch:0 ~base:(0., 0.)));
  write_file (Epoch.seal_path sp) "stale seal bytes";
  let boot = recover_ok ~what:"roll-forward" ~snapshot_path:sp ~journal_path:jp in
  Alcotest.(check int) "new epoch" 1 boot.Epoch.bt_epoch;
  Alcotest.(check bool) "rolled forward" true boot.Epoch.bt_rolled_forward;
  Alcotest.(check bool) "no seal resumed" true (boot.Epoch.bt_seal = None);
  Alcotest.(check bool) "seal deleted" false (Sys.file_exists (Epoch.seal_path sp));
  close_boot boot;
  match Journal.replay_string (read_file jp) with
  | Error e -> Alcotest.failf "rolled-forward journal unreadable: %s" e
  | Ok rv ->
      Alcotest.(check int) "compacted to one record" 1 (List.length rv.Journal.rv_records);
      Alcotest.(check bool) "lifetime = snapshot base" true (lifetime rv = (0.2, 2e-8))

let test_recover_journal_ahead () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:1 ~base:(0.2, 2e-8));
  write_file jp (journal_string (live_journal ~epoch:2 ~base:(1.0, 1e-7)));
  match Epoch.recover ~snapshot_path:sp ~journal_path:jp with
  | Ok boot ->
      close_boot boot;
      Alcotest.fail "journal ahead of snapshot must be a hard error"
  | Error _ -> ()

let test_recover_cleans_stale_tmp () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  write_file (sp ^ ".tmp") "torn snapshot tmp";
  write_file (jp ^ ".compact") "torn compaction tmp";
  write_file (Epoch.seal_path sp ^ ".tmp") "torn seal tmp";
  let boot = recover_ok ~what:"stale-tmp" ~snapshot_path:sp ~journal_path:jp in
  close_boot boot;
  Alcotest.(check bool) "snapshot tmp removed" false (Sys.file_exists (sp ^ ".tmp"));
  Alcotest.(check bool) "compact tmp removed" false (Sys.file_exists (jp ^ ".compact"));
  Alcotest.(check bool) "seal tmp removed" false
    (Sys.file_exists (Epoch.seal_path sp ^ ".tmp"))

let mk_checkpoint ~epoch =
  {
    Checkpoint.fingerprint =
      {
        Checkpoint.fp_eps = 1.;
        fp_delta = 1e-6;
        fp_alpha = 0.02;
        fp_scale = 2.;
        fp_k = 14;
        fp_t_max = 8;
        fp_eta = 0.01;
        fp_universe_size = 125;
        fp_universe_name = "grid";
        fp_dataset_size = 3000;
      };
    epoch;
    queries = 3;
    degraded = 0;
    refused = 0;
    breached = false;
    granted = [ (0.5, 1e-7) ];
    attempts = [];
    answered = 2;
    mw_updates = 1;
    mw_log_weights = [| 0.; -0.1; -0.2 |];
    sv_threshold = 0.2;
    sv_tops = 1;
    sv_asked = 2;
    sv_rng = [| 1L; 2L; 3L; 4L |];
    rng = [| 5L; 6L; 7L; 8L |];
    acct_rho = 0.1;
    acct_events = [ (0.5, 1e-7) ];
  }

let test_recover_seal_resume () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:2 ~base:(1.0, 1e-7));
  write_file jp (journal_string (live_journal ~epoch:2 ~base:(1.0, 1e-7)));
  Checkpoint.write ~path:(Epoch.seal_path sp) (mk_checkpoint ~epoch:2);
  let boot = recover_ok ~what:"seal-resume" ~snapshot_path:sp ~journal_path:jp in
  (match boot.Epoch.bt_seal with
  | Some ck -> Alcotest.(check int) "seal epoch" 2 ck.Checkpoint.epoch
  | None -> Alcotest.fail "epoch-matching seal must be resumed");
  close_boot boot

let test_recover_seal_epoch_mismatch () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:2 ~base:(1.0, 1e-7));
  write_file jp (journal_string (live_journal ~epoch:2 ~base:(1.0, 1e-7)));
  (* a previous generation's seal that the cleanup step never removed *)
  Checkpoint.write ~path:(Epoch.seal_path sp) (mk_checkpoint ~epoch:1);
  let boot = recover_ok ~what:"seal-mismatch" ~snapshot_path:sp ~journal_path:jp in
  Alcotest.(check bool) "stale seal discarded" true (boot.Epoch.bt_seal = None);
  Alcotest.(check bool) "stale seal deleted" false (Sys.file_exists (Epoch.seal_path sp));
  close_boot boot

(* --- interrupted-compaction fuzz ---

   The swap from old journal to compacted journal can die at any of its
   five steps (tmp write, mid-write, fsync, rename, dirsync) — or leave a
   torn tail / garbage line behind. Whatever the interruption, recovery
   must land on EXACTLY the old or the new journal (one whole generation)
   with the lifetime privacy account intact. *)

let compact_steps =
  [
    Epoch.Compact_write;
    Epoch.Compact_write_mid;
    Epoch.Compact_fsync;
    Epoch.Compact_rename;
    Epoch.Compact_dirsync;
  ]

let old_records = live_journal ~epoch:0 ~base:(0., 0.)
let old_lifetime = (0.2, 2e-8)
let new_base = old_lifetime (* the sealed epoch's spend retires into the base *)

let interrupted_compaction ~fault step =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:1 ~base:new_base);
  write_file jp (journal_string old_records);
  write_file (Epoch.seal_path sp) "in-flight seal";
  (* first recovery attempt dies mid-compaction at [step]... *)
  let armed = ref true in
  Epoch.set_fault_hook (fun s ->
      if s = step && !armed then begin
        armed := false;
        fault s
      end);
  (match Epoch.recover ~snapshot_path:sp ~journal_path:jp with
  | Ok boot ->
      close_boot boot;
      Epoch.clear_fault_hook ();
      Alcotest.failf "fault at %s did not interrupt recovery" (Epoch.step_to_string step)
  | Error _ | (exception _) -> Epoch.clear_fault_hook ());
  (* ...the on-disk journal is already whole: exactly old or new *)
  (match Journal.replay_string (read_file jp) with
  | Error e ->
      Alcotest.failf "journal torn by fault at %s: %s" (Epoch.step_to_string step) e
  | Ok rv ->
      let whole_old = rv.Journal.rv_records = old_records in
      let whole_new = rv.Journal.rv_epoch = 1 && List.length rv.Journal.rv_records = 1 in
      Alcotest.(check bool)
        (Printf.sprintf "whole old or new after %s" (Epoch.step_to_string step))
        true (whole_old || whole_new);
      Alcotest.(check bool)
        (Printf.sprintf "no spend lost or doubled after %s" (Epoch.step_to_string step))
        true
        (lifetime rv = old_lifetime));
  (* ...and the second recovery completes the roll-forward *)
  let boot = recover_ok ~what:(Epoch.step_to_string step) ~snapshot_path:sp ~journal_path:jp in
  Alcotest.(check int) "landed on the new epoch" 1 boot.Epoch.bt_epoch;
  Alcotest.(check bool) "seal gone" false (Sys.file_exists (Epoch.seal_path sp));
  close_boot boot;
  match Journal.replay_string (read_file jp) with
  | Error e -> Alcotest.failf "final journal unreadable: %s" e
  | Ok rv ->
      Alcotest.(check int) "final journal compacted" 1 (List.length rv.Journal.rv_records);
      Alcotest.(check bool) "final lifetime preserved" true (lifetime rv = old_lifetime)

let test_compaction_crash_fuzz () =
  List.iter
    (interrupted_compaction ~fault:(fun s -> raise (Epoch.Injected (s, "kill"))))
    compact_steps

let test_compaction_disk_fault_fuzz () =
  List.iter
    (interrupted_compaction ~fault:(fun _ ->
         raise (Unix.Unix_error (Unix.ENOSPC, "write", "injected"))))
    compact_steps;
  List.iter
    (interrupted_compaction ~fault:(fun _ -> raise (Unix.Unix_error (Unix.EIO, "fsync", "injected"))))
    [ Epoch.Compact_fsync; Epoch.Compact_dirsync ]

(* torn tail: every byte-truncation of a mid-compaction journal still
   recovers to one whole generation (the journal layer drops the torn
   tail; the epoch layer rolls forward over it) *)
let test_torn_journal_fuzz () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:1 ~base:new_base);
  let full = journal_string old_records in
  for cut = 0 to String.length full - 1 do
    write_file jp (String.sub full 0 cut);
    let boot =
      recover_ok ~what:(Printf.sprintf "cut at %d" cut) ~snapshot_path:sp ~journal_path:jp
    in
    Alcotest.(check int) (Printf.sprintf "whole epoch at cut %d" cut) 1 boot.Epoch.bt_epoch;
    close_boot boot;
    match Journal.replay_string (read_file jp) with
    | Error e -> Alcotest.failf "cut %d left a torn journal: %s" cut e
    | Ok rv ->
        Alcotest.(check bool)
          (Printf.sprintf "lifetime intact at cut %d" cut)
          true
          (lifetime rv = new_base)
  done

(* a garbage line appended by a partial write is dropped as a torn tail,
   never half-applied *)
let test_garbage_tail () =
  let dir = tmp_dir () in
  let sp = Filename.concat dir "s.epoch" and jp = Filename.concat dir "j.wal" in
  Epoch.write_snapshot ~path:sp (snapshot ~epoch:1 ~base:new_base);
  write_file jp (journal_string old_records ^ "garbage \xff\xfe bytes");
  let boot = recover_ok ~what:"garbage tail" ~snapshot_path:sp ~journal_path:jp in
  Alcotest.(check int) "whole epoch" 1 boot.Epoch.bt_epoch;
  Alcotest.(check bool) "roll-forward dropped the tail" true boot.Epoch.bt_rolled_forward;
  close_boot boot

let () =
  Alcotest.run "epoch"
    [
      ( "snapshot",
        [
          QCheck_alcotest.to_alcotest qcheck_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_snapshot_torn;
          QCheck_alcotest.to_alcotest qcheck_snapshot_corrupt;
          Alcotest.test_case "file roundtrip + missing is None" `Quick
            test_snapshot_file_roundtrip;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "compacts to a single Epoch record, idempotently" `Quick
            test_compact_single_record;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fresh boot is epoch 0" `Quick test_recover_fresh;
          Alcotest.test_case "in-epoch keeps journal and snapshot state" `Quick
            test_recover_in_epoch;
          Alcotest.test_case "committed snapshot rolls the journal forward" `Quick
            test_recover_roll_forward;
          Alcotest.test_case "journal ahead of snapshot is a hard error" `Quick
            test_recover_journal_ahead;
          Alcotest.test_case "stale tmp files are removed" `Quick test_recover_cleans_stale_tmp;
          Alcotest.test_case "epoch-matching seal is resumed" `Quick test_recover_seal_resume;
          Alcotest.test_case "mismatched seal is discarded and deleted" `Quick
            test_recover_seal_epoch_mismatch;
        ] );
      ( "interrupted compaction",
        [
          Alcotest.test_case "crash at every swap step recovers whole" `Quick
            test_compaction_crash_fuzz;
          Alcotest.test_case "ENOSPC/EIO at every swap step recovers whole" `Quick
            test_compaction_disk_fault_fuzz;
          Alcotest.test_case "every byte-truncation recovers whole" `Quick test_torn_journal_fuzz;
          Alcotest.test_case "garbage tail is dropped, never half-applied" `Quick
            test_garbage_tail;
        ] );
    ]
