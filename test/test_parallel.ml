(* Determinism tests for the parallel kernel layer (Pmw_parallel.Pool and
   every kernel rewired onto it): all pooled kernels must return results
   BIT-IDENTICAL across pool sizes {1, 2, 4} — the contract that preserves
   checkpoint/resume bit-exactness — plus the −∞ (zero prior mass) handling
   of the MW state. Inputs span multiple chunks (n > grain) so the chunked
   code paths, not just the inline fallback, are exercised. *)

module Pool = Pmw_parallel.Pool
module Special = Pmw_linalg.Special
module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Mw = Pmw_mw.Mw
module Rng = Pmw_rng.Rng

let p1 = Pool.create ~domains:1 ()
let p2 = Pool.create ~domains:2 ()
let p4 = Pool.create ~domains:4 ()
let pools = [ (1, p1); (2, p2); (4, p4) ]
let bits = Int64.bits_of_float
let feq a b = Int64.equal (bits a) (bits b)

let check_bits msg a b =
  Alcotest.(check int64) msg (bits a) (bits b)

let check_arr_bits msg a b =
  Alcotest.(check (array int64)) msg (Array.map bits a) (Array.map bits b)

(* Arrays spanning >2 chunks; contents from the seeded repo RNG so qcheck
   only has to shrink an integer seed. *)
let n_big = (2 * Pool.grain) + 1234

let random_array seed =
  let rng = Rng.create ~seed () in
  Array.init n_big (fun _ -> Rng.uniform rng ~lo:(-5.) ~hi:5.)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1000)

(* the seed algorithms, as sequential references *)
let seed_log_sum_exp a =
  let m = Array.fold_left Float.max neg_infinity a in
  if m = neg_infinity then neg_infinity
  else begin
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. exp (x -. m)) a;
    m +. log !acc
  end

let across_pools f =
  let reference = f p1 in
  List.for_all (fun (_, p) -> f p = reference) pools

let qcheck_reduce_invariant =
  QCheck.Test.make ~name:"parallel_reduce sum bit-identical across pools" ~count:20 seed_gen
    (fun seed ->
      let a = random_array seed in
      let sum p =
        Pool.parallel_reduce p ~n:(Array.length a) ~neutral:0. ~combine:( +. )
          ~chunk:(fun lo hi -> Special.kahan_range lo hi (fun i -> a.(i)))
      in
      across_pools (fun p -> bits (sum p)))

let qcheck_log_sum_exp_invariant =
  QCheck.Test.make ~name:"log_sum_exp bit-identical across pools, close to reference" ~count:20
    seed_gen (fun seed ->
      let a = random_array seed in
      let reference = seed_log_sum_exp a in
      across_pools (fun p -> bits (Special.log_sum_exp ~pool:p a))
      && Float.abs (Special.log_sum_exp ~pool:p1 a -. reference)
         <= 1e-9 *. Float.max 1. (Float.abs reference))

let qcheck_softmax_invariant =
  QCheck.Test.make ~name:"softmax bit-identical across pools and normalized" ~count:20 seed_gen
    (fun seed ->
      let a = random_array seed in
      let reference = Special.softmax ~pool:p1 a in
      List.for_all
        (fun (_, p) ->
          let s = Special.softmax ~pool:p a in
          Array.for_all2 feq s reference)
        pools
      && Float.abs (Vec.kahan_sum reference -. 1.) < 1e-9)

let hist_universe = Universe.hypercube ~d:14 ()

let qcheck_histogram_invariant =
  QCheck.Test.make ~name:"expect / expect_vec / dot bit-identical across pools" ~count:10 seed_gen
    (fun seed ->
      let rng = Rng.create ~seed () in
      let hist = Pmw_data.Synth.zipf_histogram ~universe:hist_universe ~s:1.1 rng in
      let f _ (x : Pmw_data.Point.t) = x.Pmw_data.Point.features.(0) +. x.Pmw_data.Point.features.(3) in
      let fv _ (x : Pmw_data.Point.t) = [| x.Pmw_data.Point.features.(1); 1.0 |] in
      let v = Array.init (Universe.size hist_universe) (fun i -> float_of_int (i mod 23) /. 23.) in
      across_pools (fun p -> bits (Histogram.expect ~pool:p hist f))
      && across_pools (fun p -> Array.map bits (Histogram.expect_vec ~pool:p hist ~dim:2 fv))
      && across_pools (fun p -> bits (Histogram.dot ~pool:p hist v)))

(* A full MW stream — updates, gains, checked updates, a forced recenter and
   distributions — replayed once per pool size; every intermediate
   distribution and the final log-weights must agree bit-for-bit. *)
let mw_universe = Universe.hypercube ~d:14 ()

let mw_stream pool =
  let mw = Mw.create ~pool ~universe:mw_universe ~eta:0.3 () in
  let outputs = ref [] in
  let emit h = outputs := Histogram.weights h :: !outputs in
  Mw.update mw ~loss:(fun i -> float_of_int (i land 15) /. 16.);
  emit (Mw.distribution mw);
  Mw.update_gain mw ~gain:(fun i -> sin (float_of_int i));
  (match Mw.update_checked mw ~loss:(fun i -> cos (float_of_int (i * 7))) with
  | Ok () -> ()
  | Error why -> Alcotest.failf "update_checked rejected a finite loss: %s" why);
  emit (Mw.distribution mw);
  (* Constant huge loss pushes the max past the recenter bound: the recenter
     sweep itself must also be pool-size invariant. *)
  Mw.update mw ~loss:(fun _ -> 2000.);
  emit (Mw.distribution mw);
  (Mw.log_weights mw, List.rev !outputs)

let test_mw_stream_invariant () =
  let lw1, out1 = mw_stream p1 in
  List.iter
    (fun (d, p) ->
      let lw, out = mw_stream p in
      check_arr_bits (Printf.sprintf "log-weights, %d domains" d) lw1 lw;
      List.iteri
        (fun k w -> check_arr_bits (Printf.sprintf "distribution %d, %d domains" k d) (List.nth out1 k) w)
        out)
    pools

let test_update_checked_matches_update () =
  let loss i = float_of_int ((i * 13) mod 31) /. 31. in
  let a = Mw.create ~pool:p2 ~universe:mw_universe ~eta:0.5 () in
  let b = Mw.create ~pool:p2 ~universe:mw_universe ~eta:0.5 () in
  Mw.update a ~loss;
  (match Mw.update_checked b ~loss with
  | Ok () -> ()
  | Error why -> Alcotest.failf "unexpected rejection: %s" why);
  check_arr_bits "checked == unchecked" (Mw.log_weights a) (Mw.log_weights b)

(* --- −∞ (zero prior mass) handling --- *)

let small = Universe.hypercube ~d:4 ()

let zero_prior_mw () =
  let w = Array.init 16 (fun i -> if i = 3 || i = 11 then 0. else 1.) in
  Mw.of_histogram ~pool:p2 (Histogram.of_weights small w) ~eta:0.4

let test_zero_prior_stays_zero () =
  let mw = zero_prior_mw () in
  for t = 1 to 25 do
    Mw.update mw ~loss:(fun i -> float_of_int ((i + t) mod 5))
  done;
  let d = Mw.distribution mw in
  check_bits "element 3 has exactly zero mass" 0. (Histogram.get d 3);
  check_bits "element 11 has exactly zero mass" 0. (Histogram.get d 11);
  Alcotest.(check bool) "support retains mass" true (Histogram.get d 0 > 0.);
  Alcotest.(check (float 1e-9)) "normalized" 1. (Vec.kahan_sum (Histogram.weights d))

let test_neg_infinity_log_sum_exp () =
  let all = Array.make 100 Float.neg_infinity in
  check_bits "lse of all -inf is -inf" Float.neg_infinity (Special.log_sum_exp ~pool:p2 all);
  all.(57) <- 2.5;
  Alcotest.(check (float 1e-12)) "single finite entry dominates" 2.5
    (Special.log_sum_exp ~pool:p2 all);
  let s = Special.softmax ~pool:p2 all in
  check_bits "softmax puts all mass on the finite entry" 1. s.(57);
  check_bits "and exactly zero elsewhere" 0. s.(0)

let test_softmax_rejects_empty_support () =
  Alcotest.check_raises "all -inf rejected"
    (Invalid_argument "Special.softmax: no finite entry") (fun () ->
      ignore (Special.softmax ~pool:p1 (Array.make 8 Float.neg_infinity)))

let test_update_checked_error_preserves_state () =
  let mw = zero_prior_mw () in
  Mw.update mw ~loss:(fun i -> float_of_int i);
  let before = Mw.log_weights mw in
  let upd = Mw.updates mw in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match Mw.update_checked mw ~loss:(fun i -> if i = 7 then Float.nan else 0.) with
  | Ok () -> Alcotest.fail "NaN loss accepted"
  | Error why ->
      Alcotest.(check bool) "error names the element" true (contains why "element 7"));
  check_arr_bits "state untouched after rejection" before (Mw.log_weights mw);
  Alcotest.(check int) "update count untouched" upd (Mw.updates mw)

let test_restore_roundtrip_with_neg_infinity () =
  let mw = zero_prior_mw () in
  Mw.update mw ~loss:(fun i -> float_of_int (i mod 3));
  let lw = Mw.log_weights mw in
  let fresh = Mw.of_histogram ~pool:p4 (Histogram.uniform small) ~eta:0.4 in
  Mw.restore fresh ~log_weights:lw ~updates:(Mw.updates mw);
  check_arr_bits "restored log-weights (with -inf) identical" lw (Mw.log_weights fresh);
  check_arr_bits "restored distribution identical"
    (Histogram.weights (Mw.distribution mw))
    (Histogram.weights (Mw.distribution fresh))

let test_chunking_pure_function_of_n () =
  List.iter
    (fun n ->
      let expected = if n <= 0 then 0 else (n + Pool.grain - 1) / Pool.grain in
      Alcotest.(check int) (Printf.sprintf "num_chunks %d" n) expected (Pool.num_chunks n))
    [ 0; 1; Pool.grain; Pool.grain + 1; (7 * Pool.grain) + 3 ]

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pmw_parallel"
    [
      ( "determinism",
        [
          qtest qcheck_reduce_invariant;
          qtest qcheck_log_sum_exp_invariant;
          qtest qcheck_softmax_invariant;
          qtest qcheck_histogram_invariant;
          Alcotest.test_case "mw stream bit-identical across pools" `Quick
            test_mw_stream_invariant;
          Alcotest.test_case "update_checked matches update" `Quick
            test_update_checked_matches_update;
          Alcotest.test_case "chunking is a pure function of n" `Quick
            test_chunking_pure_function_of_n;
        ] );
      ( "zero prior mass",
        [
          Alcotest.test_case "zero-prior elements stay at zero" `Quick test_zero_prior_stays_zero;
          Alcotest.test_case "log_sum_exp / softmax on -inf" `Quick test_neg_infinity_log_sum_exp;
          Alcotest.test_case "softmax rejects empty support" `Quick
            test_softmax_rejects_empty_support;
          Alcotest.test_case "checked update error preserves state" `Quick
            test_update_checked_error_preserves_state;
          Alcotest.test_case "restore round-trips -inf" `Quick
            test_restore_roundtrip_with_neg_infinity;
        ] );
    ]
