(* Tests for Pmw_mw: the multiplicative-weights update rule, its potential
   (KL) behaviour, the Lemma 3.4 regret bound, and numerical stability in
   log space. *)

module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Mw = Pmw_mw.Mw
module Vec = Pmw_linalg.Vec

let checkf tol = Alcotest.(check (float tol))
let u = Universe.hypercube ~d:4 ()

let test_create_uniform () =
  let mw = Mw.create ~universe:u ~eta:0.1 () in
  let d = Mw.distribution mw in
  for i = 0 to Universe.size u - 1 do
    checkf 1e-12 "uniform start" (1. /. 16.) (Histogram.get d i)
  done;
  Alcotest.(check int) "no updates yet" 0 (Mw.updates mw)

let test_of_histogram_start () =
  let prior = Histogram.of_weights u (Array.init 16 (fun i -> float_of_int (i + 1))) in
  let mw = Mw.of_histogram prior ~eta:0.1 in
  checkf 1e-9 "prior preserved" (Histogram.get prior 3) (Histogram.get (Mw.distribution mw) 3)

let test_update_moves_mass_away_from_loss () =
  let mw = Mw.create ~universe:u ~eta:0.5 () in
  (* element 0 has loss 1, everything else 0 *)
  Mw.update mw ~loss:(fun i -> if i = 0 then 1. else 0.);
  let d = Mw.distribution mw in
  Alcotest.(check bool) "penalized element lost mass" true (Histogram.get d 0 < 1. /. 16.);
  Alcotest.(check bool) "others gained" true (Histogram.get d 1 > 1. /. 16.);
  Alcotest.(check int) "counted" 1 (Mw.updates mw);
  (* exact ratio: w0/w1 = exp(-eta) *)
  checkf 1e-9 "exact multiplicative ratio" (exp (-0.5))
    (Histogram.get d 0 /. Histogram.get d 1)

let test_update_gain_opposite_sign () =
  let mw = Mw.create ~universe:u ~eta:0.5 () in
  Mw.update_gain mw ~gain:(fun i -> if i = 0 then 1. else 0.);
  let d = Mw.distribution mw in
  Alcotest.(check bool) "gain increases mass" true (Histogram.get d 0 > 1. /. 16.)

let test_distribution_normalized () =
  let mw = Mw.create ~universe:u ~eta:1. () in
  for t = 1 to 50 do
    Mw.update mw ~loss:(fun i -> float_of_int ((i + t) mod 3))
  done;
  let w = Histogram.weights (Mw.distribution mw) in
  checkf 1e-9 "sums to 1" 1. (Vec.kahan_sum w)

let test_kl_decreases_under_informative_updates () =
  (* Target: point mass at element 7. Loss = 0 on 7, 1 elsewhere. KL(target ||
     hypothesis) must fall monotonically. *)
  let target = Histogram.point_mass u 7 in
  let mw = Mw.create ~universe:u ~eta:0.3 () in
  let prev = ref (Mw.kl_to mw target) in
  checkf 1e-9 "initial KL is log|X|" (log 16.) !prev;
  for _ = 1 to 10 do
    Mw.update mw ~loss:(fun i -> if i = 7 then 0. else 1.);
    let now = Mw.kl_to mw target in
    Alcotest.(check bool) "KL decreased" true (now < !prev);
    prev := now
  done

let test_log_space_stability () =
  (* Thousands of aggressive updates must not produce NaN or a degenerate
     distribution. This is the scenario that underflows naive weights. *)
  let mw = Mw.create ~universe:u ~eta:5. () in
  for t = 1 to 5000 do
    Mw.update mw ~loss:(fun i -> if (i + t) mod 2 = 0 then 1. else -1.)
  done;
  let w = Histogram.weights (Mw.distribution mw) in
  Array.iter (fun x -> Alcotest.(check bool) "finite" true (Float.is_finite x)) w;
  checkf 1e-6 "still normalized" 1. (Vec.kahan_sum w)

let test_regret_bound_lemma_3_4 () =
  (* Lemma 3.4: for any loss sequence bounded by S and any comparator D,
     (1/T) sum_t <u_t, Dhat_t - D> <= 2 S sqrt(log|X| / T), with
     eta = sqrt(log|X|/T)/S. Check on an adversarial sequence that always
     charges the hypothesis's own mode. *)
  let s = 1. in
  let t_max = 200 in
  let eta = sqrt (Universe.log_size u /. float_of_int t_max) /. s in
  let mw = Mw.create ~universe:u ~eta () in
  let target = Histogram.point_mass u 3 in
  let total = ref 0. in
  for _ = 1 to t_max do
    let d = Mw.distribution mw in
    (* adversary: loss = +S on the hypothesis's current argmax, -S on the
       target element *)
    let mode = ref 0 in
    for i = 1 to 15 do
      if Histogram.get d i > Histogram.get d !mode then mode := i
    done;
    let u_t i = if i = !mode then s else if i = 3 then -.s else 0. in
    let inner_dhat = Histogram.expect d (fun i _ -> u_t i) in
    let inner_target = Histogram.expect target (fun i _ -> u_t i) in
    total := !total +. (inner_dhat -. inner_target);
    Mw.update mw ~loss:u_t
  done;
  let avg = !total /. float_of_int t_max in
  let bound = Mw.regret_bound ~universe:u ~t_max ~scale:s in
  Alcotest.(check bool)
    (Printf.sprintf "regret %.4f <= bound %.4f" avg bound)
    true (avg <= bound)

let test_theory_eta () =
  checkf 1e-12 "eta = sqrt(log|X|/T)" (sqrt (log 16. /. 100.)) (Mw.theory_eta ~universe:u ~t_max:100)

let test_validation () =
  Alcotest.check_raises "eta" (Invalid_argument "Mw.create: eta must be positive") (fun () ->
      ignore (Mw.create ~universe:u ~eta:0. ()))

let qcheck_distribution_always_valid =
  QCheck.Test.make ~name:"distribution valid after arbitrary updates" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (array_of_size (Gen.return 16) (float_range (-2.) 2.)))
    (fun losses ->
      let mw = Mw.create ~universe:u ~eta:0.7 () in
      List.iter (fun l -> Mw.update mw ~loss:(fun i -> l.(i))) losses;
      let w = Histogram.weights (Mw.distribution mw) in
      Array.for_all (fun x -> x >= 0. && Float.is_finite x) w
      && Float.abs (Vec.kahan_sum w -. 1.) < 1e-6)

(* Lemma 3.4 is a worst-case statement: for ANY loss sequence bounded by S
   and ANY comparator distribution, the averaged regret respects the bound.
   Check it over random sequences and random point-mass comparators. *)
let qcheck_regret_bound_any_sequence =
  QCheck.Test.make ~name:"Lemma 3.4 holds for arbitrary sequences" ~count:60
    QCheck.(
      triple (int_range 5 60)
        (int_range 0 15)
        (list_of_size (Gen.return 60) (array_of_size (Gen.return 16) (float_range (-1.) 1.))))
    (fun (t_max, target, losses) ->
      let s = 1. in
      let eta = sqrt (Universe.log_size u /. float_of_int t_max) /. s in
      let mw = Mw.create ~universe:u ~eta () in
      let comparator = Histogram.point_mass u target in
      let total = ref 0. in
      List.iteri
        (fun t l ->
          if t < t_max then begin
            let d = Mw.distribution mw in
            let inner_dhat = Histogram.expect d (fun i _ -> l.(i)) in
            let inner_cmp = Histogram.expect comparator (fun i _ -> l.(i)) in
            total := !total +. (inner_dhat -. inner_cmp);
            Mw.update mw ~loss:(fun i -> l.(i))
          end)
        losses;
      let avg = !total /. float_of_int t_max in
      avg <= Mw.regret_bound ~universe:u ~t_max ~scale:s +. 1e-9)

let qcheck_uniform_loss_is_noop =
  QCheck.Test.make ~name:"constant loss leaves distribution unchanged" ~count:100
    QCheck.(float_range (-3.) 3.)
    (fun c ->
      let mw = Mw.create ~universe:u ~eta:0.9 () in
      Mw.update mw ~loss:(fun _ -> c);
      let d = Mw.distribution mw in
      let ok = ref true in
      for i = 0 to 15 do
        if Float.abs (Histogram.get d i -. (1. /. 16.)) > 1e-9 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "pmw_mw"
    [
      ( "mw",
        [
          Alcotest.test_case "uniform start" `Quick test_create_uniform;
          Alcotest.test_case "prior start" `Quick test_of_histogram_start;
          Alcotest.test_case "update semantics" `Quick test_update_moves_mass_away_from_loss;
          Alcotest.test_case "gain update" `Quick test_update_gain_opposite_sign;
          Alcotest.test_case "normalization" `Quick test_distribution_normalized;
          Alcotest.test_case "KL potential" `Quick test_kl_decreases_under_informative_updates;
          Alcotest.test_case "log-space stability" `Quick test_log_space_stability;
          Alcotest.test_case "regret bound (Lemma 3.4)" `Quick test_regret_bound_lemma_3_4;
          Alcotest.test_case "theory eta" `Quick test_theory_eta;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_distribution_always_valid;
            qcheck_regret_bound_any_sequence;
            qcheck_uniform_loss_is_noop;
          ] );
    ]
