(* Tests for Pmw_core: CM queries and their error functionals (Definitions
   2.2/2.3), the 3S/n sensitivity bound (Section 3.4.2, property-tested over
   actual adjacent datasets), Figure 3's parameter derivation, the online and
   offline mechanisms' bookkeeping, the HR10 linear mechanism, the
   composition baseline, the analyst game, and the Theory formulas. *)

module Vec = Pmw_linalg.Vec
module Point = Pmw_data.Point
module Universe = Pmw_data.Universe
module Histogram = Pmw_data.Histogram
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Online_pmw = Pmw_core.Online_pmw
module Offline_pmw = Pmw_core.Offline_pmw
module Linear_pmw = Pmw_core.Linear_pmw
module Composition = Pmw_core.Composition
module Analyst = Pmw_core.Analyst
module Theory = Pmw_core.Theory
module Rng = Pmw_rng.Rng

let checkf tol = Alcotest.(check (float tol))
let rng = Rng.create ~seed:81 ()

let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 ()
let domain = Domain.unit_ball ~dim:2
let squared_query = Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ()

let small_dataset () =
  Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000 rng

(* --- Cm_query --- *)

let test_scale_parameter () =
  checkf 1e-12 "S = diam * L" 2. (Cm_query.scale squared_query);
  checkf 1e-12 "sensitivity 3S/n" (6. /. 100.) (Cm_query.error_sensitivity squared_query ~n:100)

let test_err_of_exact_minimizer_is_zero () =
  let ds = small_dataset () in
  let best = (Cm_query.minimize_on_dataset ~iters:600 squared_query ds).Pmw_convex.Solve.theta in
  let err = Cm_query.err_answer ~iters:600 squared_query ds best in
  Alcotest.(check bool) (Printf.sprintf "err %.5f ~ 0" err) true (err < 1e-3)

let test_err_hypothesis_of_true_histogram_is_zero () =
  (* Definition 2.3 with D' = D: the argmin over D's own histogram cannot err. *)
  let ds = small_dataset () in
  let err = Cm_query.err_hypothesis ~iters:600 squared_query ds (Dataset.histogram ds) in
  Alcotest.(check bool) (Printf.sprintf "err %.5f ~ 0" err) true (err < 1e-3)

let test_err_of_bad_answer_positive () =
  let ds = small_dataset () in
  (* the antipode of the planted direction is a bad answer *)
  let err = Cm_query.err_answer ~iters:600 squared_query ds [| -0.9; 0.4 |] in
  Alcotest.(check bool) "bad answer has positive error" true (err > 0.01)

let test_update_vector_bounded_by_scale () =
  let s = Cm_query.scale squared_query in
  for _ = 1 to 100 do
    let theta_oracle = Domain.random_point domain rng in
    let theta_hyp = Domain.random_point domain rng in
    let i = Rng.int rng (Universe.size universe) in
    let x = Universe.get universe i in
    let v = Cm_query.update_vector squared_query ~theta_oracle ~theta_hyp i x in
    Alcotest.(check bool) "|u(x)| <= S" true (Float.abs v <= s +. 1e-9)
  done

(* Property: the error query err_l(D, Dhat) moves by at most 3S/n between
   adjacent datasets (Section 3.4.2). This is the bound that justifies the
   sparse-vector sensitivity. *)
let qcheck_error_sensitivity =
  QCheck.Test.make ~name:"err query is 3S/n-sensitive on adjacent data" ~count:25
    QCheck.(pair (int_range 0 49) small_int)
    (fun (row, seed) ->
      let rng = Rng.create ~seed () in
      let ds = Dataset.of_histogram ~n:50 (Histogram.uniform universe) rng in
      let value = Rng.int rng (Universe.size universe) in
      let neighbor = Dataset.replace_row ds ~index:row ~value in
      let hyp = Histogram.uniform universe in
      let e = Cm_query.err_hypothesis ~iters:500 squared_query ds hyp in
      let e' = Cm_query.err_hypothesis ~iters:500 squared_query neighbor hyp in
      let bound = Cm_query.error_sensitivity squared_query ~n:50 in
      (* allow solver slack on top of the analytic bound *)
      Float.abs (e -. e') <= bound +. 1e-3)

(* --- Config --- *)

let privacy = Params.create ~eps:1. ~delta:1e-6

let test_config_theory_values () =
  let c = Config.theory ~universe ~privacy ~alpha:0.1 ~beta:0.05 ~scale:2. ~k:100 () in
  let log_x = Universe.log_size universe in
  let expected_t = int_of_float (ceil (64. *. 4. *. log_x /. 0.01)) in
  Alcotest.(check int) "T = 64 S^2 log|X| / a^2" expected_t c.Config.t_max;
  checkf 1e-12 "eta = sqrt(log|X|/T)" (sqrt (log_x /. float_of_int c.Config.t_max)) c.Config.eta;
  checkf 1e-12 "alpha0 = alpha/4" 0.025 c.Config.alpha0;
  checkf 1e-12 "SV gets half eps" 0.5 c.Config.sv_privacy.Params.eps;
  checkf 1e-12 "delta0 = delta/4T" (1e-6 /. (4. *. float_of_int c.Config.t_max))
    c.Config.oracle_privacy.Params.delta;
  (* the corrected oracle eps composes back to at most eps/2 *)
  let composed =
    Params.compose_advanced ~count:c.Config.t_max ~slack:(1e-6 /. 4.) c.Config.oracle_privacy
  in
  Alcotest.(check bool) "oracle calls compose within eps/2" true (composed.Params.eps <= 0.5 +. 1e-9)

let test_config_practical_overrides () =
  let c =
    Config.practical ~universe ~privacy ~alpha:0.1 ~beta:0.05 ~scale:2. ~k:10 ~t_max:7 ~eta:0.3 ()
  in
  Alcotest.(check int) "t_max honored" 7 c.Config.t_max;
  checkf 1e-12 "eta honored" 0.3 c.Config.eta

let test_config_validation () =
  Alcotest.check_raises "alpha" (Invalid_argument "Config: alpha must lie in (0, 1)") (fun () ->
      ignore (Config.theory ~universe ~privacy ~alpha:0. ~beta:0.05 ~scale:1. ~k:1 ()));
  Alcotest.check_raises "delta" (Invalid_argument "Config: delta must be positive") (fun () ->
      ignore
        (Config.theory ~universe ~privacy:(Params.pure 1.) ~alpha:0.1 ~beta:0.05 ~scale:1. ~k:1 ()))

let test_theorem_3_8_n () =
  let c = Config.practical ~universe ~privacy ~alpha:0.1 ~beta:0.05 ~scale:2. ~k:100 ~t_max:5 () in
  let n = Config.theorem_3_8_n c ~n_single:1e3 in
  Alcotest.(check bool) "bound dominates n_single here" true (n > 1e3);
  let n2 = Config.theorem_3_8_n c ~n_single:1e12 in
  checkf 1. "n_single dominates when huge" 1e12 n2

(* --- Online PMW mechanics --- *)

let practical_config ?(alpha = 0.05) ?(k = 20) ?(t_max = 15) () =
  Config.practical ~universe ~privacy ~alpha ~beta:0.05 ~scale:2. ~k ~t_max ~solver_iters:150 ()

let test_online_halts_at_k () =
  let ds = small_dataset () in
  let config = practical_config ~k:3 () in
  let m = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~rng () in
  for _ = 1 to 3 do
    ignore (Online_pmw.answer m squared_query)
  done;
  Alcotest.(check bool) "halted after k" true (Online_pmw.halted m);
  (* post-halt queries are still served from the frozen hypothesis, flagged *)
  match Online_pmw.answer m squared_query with
  | Online_pmw.Degraded ({ Online_pmw.source = Online_pmw.From_hypothesis; _ }, Online_pmw.Query_limit_reached)
    ->
      ()
  | _ -> Alcotest.fail "expected a Degraded hypothesis answer after the query limit"

let test_online_rejects_oversized_scale () =
  let ds = small_dataset () in
  let config =
    Config.practical ~universe ~privacy ~alpha:0.05 ~beta:0.05 ~scale:0.1 ~k:5 ~t_max:5 ()
  in
  let m = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~rng () in
  match Online_pmw.answer m squared_query with
  | Online_pmw.Refused (Online_pmw.Scale_exceeded _) -> ()
  | _ -> Alcotest.fail "expected a Scale_exceeded refusal"

let test_online_update_budget_respected () =
  let ds = small_dataset () in
  let config = practical_config ~alpha:0.01 ~k:200 ~t_max:4 () in
  let m = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~rng () in
  let answered = ref 0 in
  (try
     for _ = 1 to 200 do
       match Online_pmw.answer_opt m squared_query with
       | Some _ -> incr answered
       | None -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "at most t_max updates" true (Online_pmw.updates m <= 4)

let test_online_accountant_tracks_oracle_calls () =
  let ds = small_dataset () in
  let config = practical_config ~alpha:0.005 ~k:10 ~t_max:10 () in
  let m = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~rng () in
  for _ = 1 to 10 do
    ignore (Online_pmw.answer m squared_query)
  done;
  let a = Online_pmw.oracle_accountant m in
  Alcotest.(check int) "one ledger entry per update" (Online_pmw.updates m)
    (Pmw_dp.Accountant.count a);
  (* every entry carries the configured per-call budget *)
  let total = Pmw_dp.Accountant.total_basic a in
  checkf 1e-9 "ledger eps"
    (float_of_int (Online_pmw.updates m) *. config.Config.oracle_privacy.Params.eps)
    total.Params.eps

let test_online_hypothesis_is_valid_histogram () =
  let ds = small_dataset () in
  let config = practical_config () in
  let m = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~rng () in
  for _ = 1 to 5 do
    ignore (Online_pmw.answer m squared_query)
  done;
  let w = Histogram.weights (Online_pmw.hypothesis m) in
  checkf 1e-9 "normalized" 1. (Vec.kahan_sum w);
  Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.)) w

let test_online_accurate_with_exact_oracle () =
  (* With the exact oracle and a comfortable n, every answer must meet the
     alpha target (the SV gap plus solver slack). *)
  let ds =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:150_000 rng
  in
  let config = practical_config ~alpha:0.08 ~k:12 ~t_max:20 () in
  let m = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~rng () in
  let queries =
    [
      squared_query;
      Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
      Cm_query.make ~loss:(Losses.quantile ~tau:0.3 ()) ~domain ();
    ]
  in
  List.iter
    (fun q ->
      match Online_pmw.answer_opt m q with
      | None -> Alcotest.fail "halted unexpectedly"
      | Some o ->
          let err = Cm_query.err_answer ~iters:600 q ds o.Online_pmw.theta in
          Alcotest.(check bool)
            (Printf.sprintf "%s err %.4f <= alpha" q.Cm_query.name err)
            true (err <= config.Config.alpha +. 0.02))
    queries

(* --- Offline PMW --- *)

let test_offline_answers_all_queries () =
  let ds =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:100_000 rng
  in
  let config = practical_config ~alpha:0.08 ~k:4 ~t_max:10 () in
  let queries =
    [|
      squared_query;
      Cm_query.make ~loss:(Losses.huber ~delta:0.5 ()) ~domain ();
      Cm_query.make ~loss:(Losses.absolute ()) ~domain ();
    |]
  in
  let report =
    Offline_pmw.run ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~queries ~rng ()
  in
  Alcotest.(check int) "one answer per query" 3 (Array.length report.Offline_pmw.answers);
  Alcotest.(check bool) "rounds within budget" true
    (report.Offline_pmw.rounds_used <= config.Config.t_max);
  Array.iteri
    (fun i theta ->
      let err = Cm_query.err_answer ~iters:600 queries.(i) ds theta in
      Alcotest.(check bool)
        (Printf.sprintf "query %d err %.4f acceptable" i err)
        true (err <= config.Config.alpha +. 0.05))
    report.Offline_pmw.answers

let test_offline_validation () =
  let ds = small_dataset () in
  let config = practical_config () in
  Alcotest.check_raises "no queries" (Invalid_argument "Offline_pmw.run: no queries") (fun () ->
      ignore (Offline_pmw.run ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~queries:[||] ~rng ()))

(* --- Synthetic release --- *)

let test_synthetic_release () =
  let ds =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:100_000 rng
  in
  let config = practical_config ~alpha:0.08 ~k:3 ~t_max:10 () in
  let queries =
    [|
      squared_query;
      Cm_query.make ~loss:(Pmw_convex.Losses.huber ~delta:0.5 ()) ~domain ();
    |]
  in
  let release =
    Pmw_core.Synthetic_release.release ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~queries
      ~sample_size:20_000 ~rng ()
  in
  (* the hypothesis is a valid distribution *)
  let w = Histogram.weights release.Pmw_core.Synthetic_release.hypothesis in
  Alcotest.(check bool) "valid histogram" true
    (Float.abs (Vec.kahan_sum w -. 1.) < 1e-9);
  (* the sampled synthetic dataset exists with the requested size *)
  (match release.Pmw_core.Synthetic_release.synthetic with
  | None -> Alcotest.fail "no synthetic sample"
  | Some s -> Alcotest.(check int) "sample size" 20_000 (Dataset.size s));
  (* and the released hypothesis answers the workload accurately *)
  let errors = Pmw_core.Synthetic_release.workload_errors release ds queries in
  Array.iter
    (fun e ->
      Alcotest.(check bool) (Printf.sprintf "workload err %.4f" e) true
        (e <= config.Config.alpha +. 0.05))
    errors

let test_synthetic_release_validation () =
  let ds = small_dataset () in
  let config = practical_config () in
  Alcotest.(check bool) "rejects bad sample size" true
    (try
       ignore
         (Pmw_core.Synthetic_release.release ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact
            ~queries:[| squared_query |] ~sample_size:0 ~rng ());
       false
     with Invalid_argument _ -> true)

(* --- Linear PMW --- *)

let test_linear_pmw_accuracy () =
  let u = Universe.hypercube ~d:5 () in
  let pop = Synth.zipf_histogram ~universe:u ~s:1. rng in
  let ds = Dataset.of_histogram ~n:200_000 pop rng in
  let truth = Dataset.histogram ds in
  let mech =
    Linear_pmw.create ~universe:u ~dataset:ds ~privacy ~alpha:0.05 ~beta:0.05 ~k:40 ~t_max:30 ~rng
      ()
  in
  let max_err = ref 0. in
  for j = 0 to 4 do
    let q = Linear_pmw.counting_query ~name:"m" (fun x -> x.Point.features.(j) > 0.) in
    (match Linear_pmw.answer mech q with
    | None -> Alcotest.fail "halted"
    | Some a -> max_err := Float.max !max_err (Float.abs (a -. Linear_pmw.evaluate q truth)));
    (* also pairwise *)
    let q2 =
      Linear_pmw.counting_query ~name:"m2" (fun x ->
          x.Point.features.(j) > 0. && x.Point.features.((j + 1) mod 5) > 0.)
    in
    match Linear_pmw.answer mech q2 with
    | None -> Alcotest.fail "halted"
    | Some a -> max_err := Float.max !max_err (Float.abs (a -. Linear_pmw.evaluate q2 truth))
  done;
  Alcotest.(check bool) (Printf.sprintf "max err %.4f <= alpha" !max_err) true (!max_err <= 0.05)

let test_linear_pmw_repeated_query_stops_updating () =
  (* Once the hypothesis answers a query well, re-asking it must not consume
     updates. *)
  let u = Universe.hypercube ~d:4 () in
  let ds = Dataset.of_histogram ~n:100_000 (Histogram.uniform u) rng in
  let mech =
    Linear_pmw.create ~universe:u ~dataset:ds ~privacy ~alpha:0.05 ~beta:0.05 ~k:50 ~t_max:20 ~rng
      ()
  in
  let q = Linear_pmw.counting_query ~name:"c" (fun x -> x.Point.features.(0) > 0.) in
  for _ = 1 to 20 do
    ignore (Linear_pmw.answer mech q)
  done;
  Alcotest.(check bool) "few updates for one repeated query" true (Linear_pmw.updates mech <= 2)

(* --- Workloads --- *)

module Workloads = Pmw_core.Workloads

let test_marginal_counts () =
  Alcotest.(check int) "order-1 count" 5 (List.length (Workloads.positive_marginals ~dim:5 ~order:1));
  Alcotest.(check int) "order-2 count" 10 (List.length (Workloads.positive_marginals ~dim:5 ~order:2));
  Alcotest.(check int) "up-to-2 count" 15 (List.length (Workloads.marginals_up_to ~dim:5 ~order:2));
  Alcotest.(check bool) "order validation" true
    (try
       ignore (Workloads.positive_marginals ~dim:3 ~order:4);
       false
     with Invalid_argument _ -> true)

let test_marginal_values () =
  let u = Universe.hypercube ~d:3 () in
  let uniform = Histogram.uniform u in
  List.iter
    (fun q -> checkf 1e-9 "order-1 marginal on uniform cube = 1/2" 0.5 (Linear_pmw.evaluate q uniform))
    (Workloads.positive_marginals ~dim:3 ~order:1);
  List.iter
    (fun q -> checkf 1e-9 "order-2 marginal = 1/4" 0.25 (Linear_pmw.evaluate q uniform))
    (Workloads.positive_marginals ~dim:3 ~order:2)

let test_thresholds_monotone () =
  let u = Universe.grid_ball ~d:1 ~levels:5 () in
  let uniform = Histogram.uniform u in
  let qs = Workloads.thresholds ~axis:0 ~cuts:[ -0.5; 0.; 0.5; 1. ] in
  let values = List.map (fun q -> Linear_pmw.evaluate q uniform) qs in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "CDF increasing" true (increasing values);
  checkf 1e-9 "full mass at 1" 1. (List.nth values 3)

let test_random_conjunctions_in_range () =
  let qs = Workloads.random_signed_conjunctions ~dim:6 ~order:3 ~count:20 rng in
  Alcotest.(check int) "count" 20 (List.length qs);
  let u = Universe.hypercube ~d:6 () in
  let h = Histogram.uniform u in
  List.iter
    (fun q ->
      let v = Linear_pmw.evaluate q h in
      (* order-3 conjunction on the uniform cube answers exactly 1/8 *)
      checkf 1e-9 "1/8 on uniform" 0.125 v)
    qs

let test_as_cm_queries_consistency () =
  let u = Universe.hypercube ~d:3 () in
  let h = Histogram.uniform u in
  let lq = List.hd (Workloads.positive_marginals ~dim:3 ~order:1) in
  let cm = List.hd (Workloads.as_cm_queries ~domain:(Domain.interval ~lo:0. ~hi:1.) [ lq ]) in
  let sol = Cm_query.minimize_on_histogram cm h in
  checkf 1e-5 "CM reduction minimizer = linear answer" (Linear_pmw.evaluate lq h)
    sol.Pmw_convex.Solve.theta.(0)

(* --- Predicate DSL --- *)

module Predicate = Pmw_core.Predicate

let test_predicate_eval () =
  let p = Point.make ~label:1. [| 0.5; -0.5 |] in
  let open Predicate in
  Alcotest.(check bool) "feature gt" true (eval (Feature { axis = 0; op = Gt; threshold = 0. }) p);
  Alcotest.(check bool) "feature le" true (eval (Feature { axis = 1; op = Le; threshold = -0.5 }) p);
  Alcotest.(check bool) "label" true (eval (Label { op = Ge; threshold = 1. }) p);
  Alcotest.(check bool) "not" false (eval (Not True) p);
  Alcotest.(check bool) "and" false (eval (And (True, False)) p);
  Alcotest.(check bool) "or" true (eval (Or (False, True)) p);
  Alcotest.(check bool) "axis out of range raises" true
    (try
       ignore (eval (Feature { axis = 9; op = Gt; threshold = 0. }) p);
       false
     with Invalid_argument _ -> true)

let test_predicate_parse () =
  let check_parses input expected_str =
    match Predicate.parse input with
    | Ok t -> Alcotest.(check string) input expected_str (Predicate.to_string t)
    | Error msg -> Alcotest.fail (input ^ ": " ^ msg)
  in
  check_parses "x0 > 0" "x0 > 0";
  check_parses "x1 <= 0.5" "x1 <= 0.5";
  check_parses "label >= -1" "label >= -1";
  check_parses "x0 > 0 & x1 < 0" "(x0 > 0 & x1 < 0)";
  check_parses "x0 > 0 | x1 < 0 & label > 0" "(x0 > 0 | (x1 < 0 & label > 0))";
  check_parses "!(x0 > 0)" "!(x0 > 0)";
  check_parses "( x0 > 0 )" "x0 > 0";
  check_parses "true & false" "(true & false)"

let test_predicate_parse_errors () =
  List.iter
    (fun input ->
      match Predicate.parse input with
      | Ok _ -> Alcotest.fail (input ^ " should not parse")
      | Error _ -> ())
    [ ""; "x0 >"; "x0 0.5"; "y0 > 1"; "x0 > 0 &"; "(x0 > 0"; "x0 > 0 x1 > 0"; "x-1 > 0" ]

let test_predicate_roundtrip () =
  (* to_string output must re-parse to a semantically equal predicate *)
  let open Predicate in
  let preds =
    [
      And (Feature { axis = 0; op = Gt; threshold = 0.25 }, Not (Label { op = Lt; threshold = 0. }));
      Or (True, And (False, Feature { axis = 2; op = Ge; threshold = -0.5 }));
    ]
  in
  let sample_points =
    List.init 20 (fun i ->
        Point.make
          ~label:(if i mod 2 = 0 then 1. else -1.)
          [| float_of_int (i mod 5) /. 4.; -0.3; 0.1 |])
  in
  List.iter
    (fun t ->
      match Predicate.parse (Predicate.to_string t) with
      | Error msg -> Alcotest.fail msg
      | Ok t' ->
          List.iter
            (fun p ->
              Alcotest.(check bool) "same semantics" (Predicate.eval t p) (Predicate.eval t' p))
            sample_points)
    preds

let test_predicate_vars_and_query () =
  match Predicate.parse "x2 > 0 & (label > 0 | x0 < 0.5)" with
  | Error m -> Alcotest.fail m
  | Ok t ->
      Alcotest.(check (list int)) "vars" [ -1; 0; 2 ] (Predicate.vars t);
      let u = Universe.labeled_hypercube ~d:3 ~labels:[| -1.; 1. |] () in
      let q = Predicate.to_query t in
      let v = Linear_pmw.evaluate q (Histogram.uniform u) in
      Alcotest.(check bool) "query value in [0,1]" true (v >= 0. && v <= 1.)

(* qcheck: random predicate ASTs survive to_string |> parse with identical
   semantics on a sample of points. *)
let predicate_gen =
  let open QCheck.Gen in
  let comparison = oneofl [ Predicate.Gt; Predicate.Ge; Predicate.Lt; Predicate.Le ] in
  let atom =
    frequency
      [
        ( 4,
          map3
            (fun axis op threshold -> Predicate.Feature { axis; op; threshold })
            (int_range 0 2) comparison (float_range (-1.) 1.) );
        (2, map2 (fun op threshold -> Predicate.Label { op; threshold }) comparison (float_range (-1.) 1.));
        (1, return Predicate.True);
        (1, return Predicate.False);
      ]
  in
  let rec pred depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map (fun p -> Predicate.Not p) (pred (depth - 1)));
          (1, map2 (fun a b -> Predicate.And (a, b)) (pred (depth - 1)) (pred (depth - 1)));
          (1, map2 (fun a b -> Predicate.Or (a, b)) (pred (depth - 1)) (pred (depth - 1)));
        ]
  in
  pred 3

let qcheck_predicate_roundtrip =
  QCheck.Test.make ~name:"predicate print/parse roundtrip" ~count:300
    (QCheck.make ~print:Predicate.to_string predicate_gen)
    (fun t ->
      match Predicate.parse (Predicate.to_string t) with
      | Error _ -> false
      | Ok t' ->
          List.for_all
            (fun p -> Bool.equal (Predicate.eval t p) (Predicate.eval t' p))
            (List.init 16 (fun i ->
                 Point.make
                   ~label:(float_of_int (i mod 5) /. 2. -. 1.)
                   [|
                     float_of_int (i mod 3) /. 2. -. 0.5;
                     float_of_int (i mod 7) /. 6. -. 0.5;
                     float_of_int (i mod 2) -. 0.5;
                   |])))

(* --- SmallDB --- *)

let test_smalldb_counts () =
  Alcotest.(check int) "C(5,2)" 10 (Pmw_core.Smalldb.candidate_count ~universe_size:4 ~m:2);
  Alcotest.(check bool) "saturates" true
    (Pmw_core.Smalldb.candidate_count ~universe_size:8192 ~m:6 = max_int);
  Alcotest.(check bool) "suggested m positive" true
    (Pmw_core.Smalldb.suggested_m ~k:100 ~alpha:0.5 >= 1)

let test_smalldb_accuracy_tiny () =
  let u = Universe.hypercube ~d:3 () in
  let pop = Synth.zipf_histogram ~universe:u ~s:1.5 rng in
  let ds = Pmw_data.Dataset.of_histogram ~n:50_000 pop rng in
  let truth = Pmw_data.Dataset.histogram ds in
  let workload = Array.of_list (Workloads.positive_marginals ~dim:3 ~order:1) in
  let report = Pmw_core.Smalldb.run ~dataset:ds ~queries:workload ~eps:2. ~m:8 ~rng () in
  Alcotest.(check int) "m rows" 8 (Array.length report.Pmw_core.Smalldb.rows);
  let max_err = ref 0. in
  Array.iteri
    (fun j q ->
      max_err :=
        Float.max !max_err
          (Float.abs (report.Pmw_core.Smalldb.answers.(j) -. Linear_pmw.evaluate q truth)))
    workload;
  (* with m=8 rows, answers are multiples of 1/8: error floor 1/16 + EM noise *)
  Alcotest.(check bool) (Printf.sprintf "max err %.4f" !max_err) true (!max_err <= 0.15)

let test_smalldb_refuses_blowup () =
  let u = Universe.hypercube ~d:10 () in
  let ds = Pmw_data.Dataset.of_histogram ~n:100 (Histogram.uniform u) rng in
  Alcotest.(check bool) "cap enforced" true
    (try
       ignore
         (Pmw_core.Smalldb.run ~dataset:ds
            ~queries:[| Pmw_core.Linear_pmw.counting_query ~name:"q" (fun _ -> true) |]
            ~eps:1. ~m:10 ~rng ());
       false
     with Invalid_argument _ -> true)

(* --- accuracy game estimation --- *)

let test_estimate_accuracy () =
  let ds = small_dataset () in
  (* a mechanism that always answers with the exact minimizer wins always *)
  let game ~seed =
    ignore seed;
    Analyst.run
      ~analyst:(Analyst.of_list ~name:"g" [ squared_query ])
      ~k:1
      ~answer:(fun q -> Some (Cm_query.minimize_on_dataset ~iters:300 q ds).Pmw_convex.Solve.theta)
      ~dataset:ds ~solver_iters:300 ()
  in
  checkf 1e-9 "perfect mechanism" 1. (Analyst.estimate_accuracy ~trials:5 ~game ~alpha:0.01);
  (* a mechanism that never answers always loses *)
  let losing ~seed =
    ignore seed;
    Analyst.run
      ~analyst:(Analyst.of_list ~name:"g" [ squared_query ])
      ~k:1
      ~answer:(fun _ -> None)
      ~dataset:ds ()
  in
  checkf 1e-9 "halting mechanism" 0. (Analyst.estimate_accuracy ~trials:5 ~game:losing ~alpha:1.)

(* --- MWEM --- *)

let test_mwem_accuracy () =
  let u = Universe.hypercube ~d:5 () in
  let pop = Synth.zipf_histogram ~universe:u ~s:1. rng in
  let ds = Pmw_data.Dataset.of_histogram ~n:100_000 pop rng in
  let truth = Pmw_data.Dataset.histogram ds in
  let workload = Array.of_list (Workloads.marginals_up_to ~dim:5 ~order:2) in
  let report = Pmw_core.Mwem.run ~dataset:ds ~queries:workload ~eps:1. ~rounds:15 ~rng () in
  let max_err = ref 0. in
  Array.iteri
    (fun j q ->
      max_err :=
        Float.max !max_err
          (Float.abs (report.Pmw_core.Mwem.answers.(j) -. Linear_pmw.evaluate q truth)))
    workload;
  Alcotest.(check bool) (Printf.sprintf "max err %.4f <= 0.08" !max_err) true (!max_err <= 0.08)

let test_mwem_improves_on_uniform () =
  let u = Universe.hypercube ~d:4 () in
  let pop = Synth.zipf_histogram ~universe:u ~s:1.5 rng in
  let ds = Pmw_data.Dataset.of_histogram ~n:50_000 pop rng in
  let truth = Pmw_data.Dataset.histogram ds in
  let workload = Array.of_list (Workloads.marginals_up_to ~dim:4 ~order:2) in
  let report = Pmw_core.Mwem.run ~dataset:ds ~queries:workload ~eps:1. ~rounds:12 ~rng () in
  let err source =
    Array.fold_left
      (fun (acc, j) q ->
        ( Float.max acc (Float.abs (Linear_pmw.evaluate q source -. Linear_pmw.evaluate q truth)),
          j + 1 ))
      (0., 0) workload
    |> fst
  in
  Alcotest.(check bool) "beats the uninformed prior" true
    (err report.Pmw_core.Mwem.average < err (Histogram.uniform u))

let test_mwem_bookkeeping () =
  let u = Universe.hypercube ~d:3 () in
  let ds = Pmw_data.Dataset.of_histogram ~n:1_000 (Histogram.uniform u) rng in
  let workload = Array.of_list (Workloads.positive_marginals ~dim:3 ~order:1) in
  let report = Pmw_core.Mwem.run ~dataset:ds ~queries:workload ~eps:0.5 ~rounds:4 ~rng () in
  Alcotest.(check int) "answers per query" 3 (Array.length report.Pmw_core.Mwem.answers);
  Alcotest.(check int) "one selection per round" 4 (List.length report.Pmw_core.Mwem.selected);
  List.iter
    (fun j -> Alcotest.(check bool) "selection in range" true (j >= 0 && j < 3))
    report.Pmw_core.Mwem.selected;
  Alcotest.(check bool) "rejects empty workload" true
    (try
       ignore (Pmw_core.Mwem.run ~dataset:ds ~queries:[||] ~eps:1. ~rounds:1 ~rng ());
       false
     with Invalid_argument _ -> true)

(* --- Laplace histogram release --- *)

let test_histogram_release_accuracy () =
  let u = Universe.hypercube ~d:4 () in
  let pop = Synth.zipf_histogram ~universe:u ~s:1. rng in
  let ds = Pmw_data.Dataset.of_histogram ~n:200_000 pop rng in
  let truth = Pmw_data.Dataset.histogram ds in
  let released = Pmw_core.Histogram_release.release ~dataset:ds ~eps:1. ~rng in
  (* valid distribution *)
  checkf 1e-9 "normalized" 1. (Vec.kahan_sum (Histogram.weights released));
  (* close to truth at this n: per-cell noise 2/(n eps) = 1e-5 *)
  Alcotest.(check bool) "L1 close" true (Histogram.l1_dist released truth < 0.01);
  let q = List.hd (Workloads.positive_marginals ~dim:4 ~order:1) in
  Alcotest.(check bool) "query error tiny" true
    (Float.abs (Pmw_core.Histogram_release.answer released q -. Linear_pmw.evaluate q truth)
    < 0.005)

let test_histogram_release_noise_direction () =
  (* with tiny eps the release must be much farther from the truth *)
  let u = Universe.hypercube ~d:4 () in
  let ds = Pmw_data.Dataset.of_histogram ~n:1_000 (Histogram.uniform u) rng in
  let truth = Pmw_data.Dataset.histogram ds in
  let tight = Pmw_core.Histogram_release.release ~dataset:ds ~eps:0.01 ~rng in
  let loose = Pmw_core.Histogram_release.release ~dataset:ds ~eps:10. ~rng in
  Alcotest.(check bool) "more eps, closer release" true
    (Histogram.l1_dist loose truth < Histogram.l1_dist tight truth)

(* --- analyst combinators --- *)

let test_random_from_pool () =
  let ds = small_dataset () in
  let analyst = Analyst.random_from_pool ~name:"rand" [ squared_query ] ~k:6 rng in
  let records = Analyst.run ~analyst ~k:100 ~answer:(fun _ -> Some [| 0.; 0. |]) ~dataset:ds () in
  Alcotest.(check int) "k rounds" 6 (List.length records)

let test_greedy_hardest_targets_worst () =
  let ds = small_dataset () in
  let easy = squared_query in
  let hard = Cm_query.make ~name:"hard" ~loss:(Pmw_convex.Losses.absolute ()) ~domain () in
  let analyst = Analyst.greedy_hardest ~name:"greedy" [ easy; hard ] ~k:6 in
  (* answer each query with the domain center; LAD has the larger error at 0 *)
  let records =
    Analyst.run ~analyst ~k:6 ~answer:(fun _ -> Some [| 0.; 0. |]) ~dataset:ds ~solver_iters:300 ()
  in
  (* rounds 0-1 explore; later rounds must all re-ask the harder query *)
  let later = List.filteri (fun i _ -> i >= 2) records in
  let easy_err = Cm_query.err_answer ~iters:300 easy ds [| 0.; 0. |] in
  let hard_err = Cm_query.err_answer ~iters:300 hard ds [| 0.; 0. |] in
  if hard_err > easy_err +. 1e-6 then
    List.iter
      (fun (r : Analyst.record) ->
        Alcotest.(check string) "re-asks the worst query" "hard" r.Analyst.query.Cm_query.name)
      later

(* --- Composition baseline --- *)

let test_composition_budget_split () =
  let p = Composition.per_query_budget ~split:Composition.Basic ~k:10 privacy in
  checkf 1e-12 "basic split" 0.1 p.Params.eps;
  let a = Composition.per_query_budget ~split:Composition.Advanced ~k:10 privacy in
  Alcotest.(check bool) "advanced split per-query" true (a.Params.eps > 0. && a.Params.eps < 1.)

let test_composition_answers_k_then_stops () =
  let ds = small_dataset () in
  let c = Composition.create ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~privacy ~k:3 ~rng () in
  for _ = 1 to 3 do
    Alcotest.(check bool) "answers" true (Composition.answer c squared_query <> None)
  done;
  Alcotest.(check bool) "stops at k" true (Composition.answer c squared_query = None);
  Alcotest.(check int) "accounted" 3 (Pmw_dp.Accountant.count (Composition.accountant c))

(* --- Analyst --- *)

let test_analyst_of_list_and_run () =
  let ds = small_dataset () in
  let analyst = Analyst.of_list ~name:"two" [ squared_query; squared_query ] in
  let records =
    Analyst.run ~analyst ~k:10
      ~answer:(fun q -> Some (Cm_query.minimize_on_dataset ~iters:300 q ds).Pmw_convex.Solve.theta)
      ~dataset:ds ~solver_iters:300 ()
  in
  Alcotest.(check int) "stops when list exhausted" 2 (List.length records);
  Alcotest.(check int) "all answered" 2 (Analyst.answered records);
  Alcotest.(check bool) "near-zero errors" true (Analyst.max_error records < 1e-3)

let test_analyst_cycle_length () =
  let analyst = Analyst.cycle ~name:"c" [ squared_query ] ~k:7 in
  let ds = small_dataset () in
  let records =
    Analyst.run ~analyst ~k:100 ~answer:(fun _ -> Some [| 0.; 0. |]) ~dataset:ds ()
  in
  Alcotest.(check int) "k rounds" 7 (List.length records)

let test_analyst_adaptive_sees_history () =
  let ds = small_dataset () in
  let saw_history = ref false in
  let analyst =
    Analyst.adaptive ~name:"probe" (fun ~round ~history ->
        if round = 1 && List.length history = 1 then saw_history := true;
        if round < 2 then Some squared_query else None)
  in
  ignore (Analyst.run ~analyst ~k:5 ~answer:(fun _ -> Some [| 0.; 0. |]) ~dataset:ds ());
  Alcotest.(check bool) "history delivered" true !saw_history

(* --- Budget --- *)

module Budget = Pmw_core.Budget

let test_budget_accounting () =
  let b = Budget.create (Params.create ~eps:1. ~delta:1e-6) in
  (match Budget.request_fraction b 0.5 with
  | Ok slice -> checkf 1e-12 "half granted" 0.5 slice.Params.eps
  | Error m -> Alcotest.fail m);
  checkf 1e-12 "remaining eps" 0.5 (Budget.remaining b).Params.eps;
  (match Budget.request b (Params.create ~eps:0.6 ~delta:0.) with
  | Ok _ -> Alcotest.fail "over-budget request granted"
  | Error _ -> ());
  (* refusal must not debit *)
  checkf 1e-12 "refusal free" 0.5 (Budget.remaining b).Params.eps;
  (match Budget.request_fraction b 0.5 with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  Alcotest.(check int) "two grants in history" 2 (List.length (Budget.history b))

let test_budget_delta_guard () =
  let b = Budget.create (Params.create ~eps:10. ~delta:1e-8) in
  match Budget.request b (Params.create ~eps:0.1 ~delta:1e-6) with
  | Ok _ -> Alcotest.fail "delta overdraft granted"
  | Error _ -> ()

let test_budget_validation () =
  let b = Budget.create (Params.pure 1.) in
  Alcotest.check_raises "fraction" (Invalid_argument "Budget.request_fraction: fraction must lie in (0, 1]")
    (fun () -> ignore (Budget.request_fraction b 0.))

let test_budget_full_fraction_twice () =
  let b = Budget.create (Params.create ~eps:1. ~delta:1e-6) in
  (match Budget.request_fraction b 1.0 with Ok _ -> () | Error m -> Alcotest.fail m);
  (match Budget.request_fraction b 1.0 with
  | Ok _ -> Alcotest.fail "second full grant must be refused"
  | Error _ -> ());
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  (* the float-summed remainder must still be re-grantable despite round-off *)
  checkf 1e-15 "spent equals total" 1. (Budget.spent b).Params.eps

let test_budget_zero_total () =
  let b = Budget.create (Params.create ~eps:0. ~delta:0.) in
  Alcotest.(check bool) "born exhausted" true (Budget.exhausted b);
  (match Budget.request b (Params.pure 0.1) with
  | Ok _ -> Alcotest.fail "grant from an empty pot"
  | Error _ -> ());
  (* a zero-cost request is harmless and still recorded *)
  (match Budget.request b (Params.pure 0.) with Ok _ -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "zero grant recorded" 1 (List.length (Budget.history b))

let test_budget_request_all () =
  let b = Budget.create (Params.create ~eps:1. ~delta:1e-6) in
  (match Budget.request_fraction b 0.25 with Ok _ -> () | Error m -> Alcotest.fail m);
  let r = Budget.request_all b in
  checkf 1e-12 "drain takes the remainder" 0.75 r.Params.eps;
  Alcotest.(check bool) "exhausted after drain" true (Budget.exhausted b);
  checkf 1e-12 "second drain is empty" 0. (Budget.request_all b).Params.eps;
  checkf 1e-15 "spent equals total" (Budget.total b).Params.eps (Budget.spent b).Params.eps

let test_budget_history_order () =
  let b = Budget.create (Params.pure 1.) in
  ignore (Budget.request b (Params.pure 0.1));
  ignore (Budget.request b (Params.pure 0.2));
  ignore (Budget.request b (Params.pure 5.) : (Params.t, string) result) (* refused *);
  ignore (Budget.request b (Params.pure 0.3));
  match Budget.history b with
  | [ g1; g2; g3 ] ->
      checkf 1e-15 "first" 0.1 g1.Params.eps;
      checkf 1e-15 "second" 0.2 g2.Params.eps;
      checkf 1e-15 "third (refusal left no trace)" 0.3 g3.Params.eps
  | h -> Alcotest.fail (Printf.sprintf "history has %d entries" (List.length h))

(* --- warm start --- *)

let test_warm_start_prior () =
  let ds =
    Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:100_000 rng
  in
  let truth = Dataset.histogram ds in
  (* smooth the truth so it has full support, as the API requires *)
  let prior = Histogram.mix truth (Histogram.uniform universe) 0.02 in
  let config = practical_config ~alpha:0.06 ~k:20 ~t_max:20 () in
  let warm = Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact ~prior ~rng () in
  let q = squared_query in
  (* a near-perfect prior answers immediately from the hypothesis... *)
  (match Online_pmw.answer_opt warm q with
  | Some { Online_pmw.source = Online_pmw.From_hypothesis; _ } -> ()
  | Some { Online_pmw.source = Online_pmw.From_oracle; _ } ->
      Alcotest.fail "near-truth prior should answer from the hypothesis"
  | None -> Alcotest.fail "halted");
  (* ... and needs (almost) no updates over a long stream *)
  for _ = 1 to 19 do
    ignore (Online_pmw.answer warm q)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "warm updates %d small" (Online_pmw.updates warm))
    true
    (Online_pmw.updates warm <= 2)

let test_warm_start_validation () =
  let ds = small_dataset () in
  let config = practical_config () in
  let other_universe = Universe.hypercube ~d:3 () in
  Alcotest.(check bool) "wrong universe rejected" true
    (try
       ignore
         (Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact
            ~prior:(Histogram.uniform other_universe) ~rng ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty-support prior rejected" true
    (try
       ignore
         (Online_pmw.create ~config ~dataset:ds ~oracle:Pmw_erm.Oracles.exact
            ~prior:(Histogram.point_mass universe 0) ~rng ());
       false
     with Invalid_argument _ -> true)

(* --- Transfer --- *)

let test_transfer_bounds () =
  let privacy = Params.create ~eps:0.1 ~delta:1e-8 in
  let bound = Pmw_core.Transfer.population_error ~sample_alpha:0.05 ~privacy ~n:10_000 ~k:100 ~beta:0.05 in
  (* components: 0.05 + (e^0.1 - 1) + 100*1e-8 + sqrt(ln(4000)/20000) *)
  let expected =
    0.05 +. (exp 0.1 -. 1.) +. 1e-6 +. sqrt (log (2. *. 100. /. 0.05) /. 20_000.)
  in
  checkf 1e-9 "closed form" expected bound;
  (* privacy's max-information term dominates as eps grows *)
  let loose =
    Pmw_core.Transfer.population_error ~sample_alpha:0.05
      ~privacy:(Params.create ~eps:1. ~delta:1e-8)
      ~n:10_000 ~k:100 ~beta:0.05
  in
  Alcotest.(check bool) "monotone in eps" true (loose > bound);
  (* the non-private adaptive rate is sqrt(k/n) — worse than the private
     bound once k is large relative to its log *)
  let np = Pmw_core.Transfer.overfitting_bound_without_privacy ~n:10_000 ~k:10_000 ~beta:0.05 in
  let p =
    Pmw_core.Transfer.population_error ~sample_alpha:0.
      ~privacy:(Params.create ~eps:0.05 ~delta:1e-10)
      ~n:10_000 ~k:10_000 ~beta:0.05
  in
  Alcotest.(check bool) "privacy beats naive adaptivity at large k" true (p < np)

let test_transfer_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Transfer: n must be positive") (fun () ->
      ignore (Pmw_core.Transfer.sampling_term ~n:0 ~k:1 ~beta:0.5))

(* --- Theory --- *)

let test_theory_monotonicity () =
  let base = Theory.default ~alpha:0.1 ~log_universe:10. in
  let tighter = { base with Theory.alpha = 0.05 } in
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) (name ^ " grows as alpha shrinks") true (f tighter > f base))
    [
      ("linear_single", Theory.linear_single);
      ("lipschitz_single", Theory.lipschitz_single);
      ("uglm_single", Theory.uglm_single);
      ("strongly_convex_single", Theory.strongly_convex_single);
      ("linear_k", Theory.linear_k);
      ("lipschitz_k", Theory.lipschitz_k);
      ("uglm_k", Theory.uglm_k);
      ("strongly_convex_k", Theory.strongly_convex_k);
    ]

let test_theory_k_dependence_is_logarithmic () =
  let base = { (Theory.default ~alpha:0.1 ~log_universe:10.) with Theory.k = 100 } in
  let more = { base with Theory.k = 10_000 } in
  (* PMW bound grows by log factor (x2 here), composition by x10. *)
  let pmw_ratio = Theory.linear_k more /. Theory.linear_k base in
  let comp_ratio = Theory.composition_k more ~n_single:10. /. Theory.composition_k base ~n_single:10. in
  Alcotest.(check bool) "log k growth" true (pmw_ratio < 2.1);
  checkf 1e-9 "sqrt k growth" 10. comp_ratio

let test_theory_t_updates () =
  let i = { (Theory.default ~alpha:0.1 ~log_universe:4.) with Theory.scale = 2. } in
  checkf 1e-9 "T formula" (64. *. 4. *. 4. /. 0.01) (Theory.t_updates i)

let test_theory_crossover () =
  let i = { (Theory.default ~alpha:0.1 ~log_universe:9.) with Theory.k = 1 } in
  let k = Theory.crossover_k i in
  (* at the crossover, sqrt k ~ c log k *)
  let c = i.Theory.scale *. sqrt i.Theory.log_universe /. i.Theory.alpha in
  Alcotest.(check bool) "fixed point" true (Float.abs (sqrt k -. (c *. log k)) < 1e-3 *. sqrt k)

let () =
  Alcotest.run "pmw_core"
    [
      ( "cm_query",
        [
          Alcotest.test_case "scale + sensitivity" `Quick test_scale_parameter;
          Alcotest.test_case "err of minimizer" `Quick test_err_of_exact_minimizer_is_zero;
          Alcotest.test_case "err_hypothesis of D" `Quick test_err_hypothesis_of_true_histogram_is_zero;
          Alcotest.test_case "err of bad answer" `Quick test_err_of_bad_answer_positive;
          Alcotest.test_case "update vector bounded" `Quick test_update_vector_bounded_by_scale;
          QCheck_alcotest.to_alcotest qcheck_error_sensitivity;
        ] );
      ( "config",
        [
          Alcotest.test_case "theory values" `Quick test_config_theory_values;
          Alcotest.test_case "practical overrides" `Quick test_config_practical_overrides;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "theorem 3.8 n" `Quick test_theorem_3_8_n;
        ] );
      ( "online_pmw",
        [
          Alcotest.test_case "halts at k" `Quick test_online_halts_at_k;
          Alcotest.test_case "rejects oversized S" `Quick test_online_rejects_oversized_scale;
          Alcotest.test_case "update budget" `Quick test_online_update_budget_respected;
          Alcotest.test_case "accountant" `Quick test_online_accountant_tracks_oracle_calls;
          Alcotest.test_case "hypothesis valid" `Quick test_online_hypothesis_is_valid_histogram;
          Alcotest.test_case "accurate with exact oracle" `Slow test_online_accurate_with_exact_oracle;
        ] );
      ( "offline_pmw",
        [
          Alcotest.test_case "answers all" `Slow test_offline_answers_all_queries;
          Alcotest.test_case "validation" `Quick test_offline_validation;
        ] );
      ( "synthetic_release",
        [
          Alcotest.test_case "release + workload" `Slow test_synthetic_release;
          Alcotest.test_case "validation" `Quick test_synthetic_release_validation;
        ] );
      ( "linear_pmw",
        [
          Alcotest.test_case "accuracy" `Slow test_linear_pmw_accuracy;
          Alcotest.test_case "repeated query" `Quick test_linear_pmw_repeated_query_stops_updating;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "marginal counts" `Quick test_marginal_counts;
          Alcotest.test_case "marginal values" `Quick test_marginal_values;
          Alcotest.test_case "thresholds CDF" `Quick test_thresholds_monotone;
          Alcotest.test_case "random conjunctions" `Quick test_random_conjunctions_in_range;
          Alcotest.test_case "CM reduction" `Quick test_as_cm_queries_consistency;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "eval" `Quick test_predicate_eval;
          Alcotest.test_case "parse" `Quick test_predicate_parse;
          Alcotest.test_case "parse errors" `Quick test_predicate_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_predicate_roundtrip;
          Alcotest.test_case "vars + query" `Quick test_predicate_vars_and_query;
          QCheck_alcotest.to_alcotest qcheck_predicate_roundtrip;
        ] );
      ( "smalldb",
        [
          Alcotest.test_case "counts" `Quick test_smalldb_counts;
          Alcotest.test_case "tiny accuracy" `Quick test_smalldb_accuracy_tiny;
          Alcotest.test_case "refuses blowup" `Quick test_smalldb_refuses_blowup;
        ] );
      ( "accuracy_game",
        [ Alcotest.test_case "estimate beta" `Quick test_estimate_accuracy ] );
      ( "mwem",
        [
          Alcotest.test_case "accuracy" `Slow test_mwem_accuracy;
          Alcotest.test_case "beats uniform" `Quick test_mwem_improves_on_uniform;
          Alcotest.test_case "bookkeeping" `Quick test_mwem_bookkeeping;
        ] );
      ( "histogram_release",
        [
          Alcotest.test_case "accuracy" `Quick test_histogram_release_accuracy;
          Alcotest.test_case "noise direction" `Quick test_histogram_release_noise_direction;
        ] );
      ( "analyst_combinators",
        [
          Alcotest.test_case "random pool" `Quick test_random_from_pool;
          Alcotest.test_case "greedy hardest" `Quick test_greedy_hardest_targets_worst;
        ] );
      ( "composition",
        [
          Alcotest.test_case "budget split" `Quick test_composition_budget_split;
          Alcotest.test_case "answers k then stops" `Quick test_composition_answers_k_then_stops;
        ] );
      ( "analyst",
        [
          Alcotest.test_case "of_list" `Quick test_analyst_of_list_and_run;
          Alcotest.test_case "cycle" `Quick test_analyst_cycle_length;
          Alcotest.test_case "adaptive history" `Quick test_analyst_adaptive_sees_history;
        ] );
      ( "budget",
        [
          Alcotest.test_case "accounting" `Quick test_budget_accounting;
          Alcotest.test_case "delta guard" `Quick test_budget_delta_guard;
          Alcotest.test_case "validation" `Quick test_budget_validation;
          Alcotest.test_case "full fraction twice" `Quick test_budget_full_fraction_twice;
          Alcotest.test_case "zero total" `Quick test_budget_zero_total;
          Alcotest.test_case "request_all" `Quick test_budget_request_all;
          Alcotest.test_case "history order" `Quick test_budget_history_order;
        ] );
      ( "warm_start",
        [
          Alcotest.test_case "prior helps" `Slow test_warm_start_prior;
          Alcotest.test_case "validation" `Quick test_warm_start_validation;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "bounds" `Quick test_transfer_bounds;
          Alcotest.test_case "validation" `Quick test_transfer_validation;
        ] );
      ( "theory",
        [
          Alcotest.test_case "monotonicity" `Quick test_theory_monotonicity;
          Alcotest.test_case "log k vs sqrt k" `Quick test_theory_k_dependence_is_logarithmic;
          Alcotest.test_case "T formula" `Quick test_theory_t_updates;
          Alcotest.test_case "crossover" `Quick test_theory_crossover;
        ] );
    ]
