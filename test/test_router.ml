(* Tests for the fleet routing tier (lib/server/router.ml) and the client's
   fleet-aware retry loop: full-cover composition, typed partial answers
   when a shard is down (missing_shards + coverage), refusal when no shard
   can answer, shard-scoped queries, the chaos control plane, and the
   Net.Client contracts the fleet relies on — a Partial verdict is a
   success (never retried) and the retry loop respects its wall-clock
   deadline. *)

module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain_ = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Budget = Pmw_core.Budget
module Session = Pmw_session.Session
module Pool = Pmw_parallel.Pool
module Protocol = Pmw_server.Protocol
module Shard = Pmw_server.Shard
module Router = Pmw_server.Router
module Supervisor = Pmw_server.Supervisor
module Net = Pmw_server.Net
module Rng = Pmw_rng.Rng

(* --- fixture --- *)

let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 ()
let domain = Domain_.unit_ball ~dim:2
let privacy = Params.create ~eps:1. ~delta:1e-6

let dataset =
  Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000
    (Rng.create ~seed:7 ())

let config () =
  Config.practical ~universe ~privacy ~alpha:0.02 ~beta:0.05 ~scale:2. ~k:14 ~t_max:8
    ~solver_iters:120 ()

let panel =
  [
    ("sq", Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ());
    ("huber", Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ());
  ]

let resolve name = List.assoc_opt name panel

let mk_fleet ?(shards = 3) () =
  let blocks = Shard.partition dataset ~by:Shard.Block ~shards in
  Array.of_list
    (List.mapi
       (fun i block ->
         Shard.create ~id:i
           ~weight:(float_of_int (Dataset.size block) /. float_of_int (Dataset.size dataset))
           ~make_session:(fun tel ->
             let pool = Pool.create ~domains:1 () in
             Session.create ~pool ~telemetry:tel
               ~label:(Printf.sprintf "shard%d" i)
               ~config:(config ()) ~dataset:block
               ~rng:(Rng.create ~seed:(100 + i) ())
               ())
           ~resolve ())
       blocks)

let start_fleet fleet =
  Array.iter
    (fun s ->
      match Shard.start s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "shard %d failed to start: %s" (Shard.id s) m)
    fleet

let with_fleet ?shards ?config:rcfg f =
  let fleet = mk_fleet ?shards () in
  start_fleet fleet;
  let router = Router.create ?config:rcfg ~shards:fleet () in
  Fun.protect ~finally:(fun () -> Array.iter Shard.stop fleet) (fun () -> f fleet router)

let req ?rid ?shards ~id ~query () =
  {
    Protocol.req_id = id;
    req_analyst = "a";
    req_query = query;
    req_rid = rid;
    req_shards = shards;
    req_trace = None;
    req_pspan = None;
    req_rows = None;
  }

(* --- composition --- *)

let test_full_cover_answers () =
  with_fleet (fun _fleet router ->
      let rsp = Router.submit router (req ~id:1 ~query:"sq" ()) in
      (match rsp.Protocol.rsp_status with
      | Protocol.Answered | Protocol.Degraded _ -> ()
      | st -> Alcotest.failf "expected a full-cover answer, got %s" (Protocol.status_tag st));
      Alcotest.(check (option string)) "composed by the fleet" (Some "fleet")
        rsp.Protocol.rsp_source;
      Alcotest.(check (option int)) "all shards contributed" (Some 3) rsp.Protocol.rsp_batch;
      (match rsp.Protocol.rsp_theta with
      | Some th -> Alcotest.(check int) "composed theta has model dim" 2 (Array.length th)
      | None -> Alcotest.fail "full cover must carry a theta");
      (* fleet spend = parallel composition = max over shards, so it is
         bounded by a single shard's pot *)
      match rsp.Protocol.rsp_spent_eps with
      | Some e -> Alcotest.(check bool) "fleet spend within one pot" true (e <= 1.)
      | None -> Alcotest.fail "fleet answers carry the composed spend")

let test_partial_when_a_shard_is_down () =
  with_fleet (fun fleet router ->
      Alcotest.(check bool) "killed shard 1" true (Shard.kill fleet.(1));
      let rsp = Router.submit router (req ~id:2 ~query:"sq" ()) in
      match rsp.Protocol.rsp_status with
      | Protocol.Partial { missing_shards; coverage; retry_after_s; reason } ->
          Alcotest.(check (list int)) "exactly the dead shard is missing" [ 1 ] missing_shards;
          let expected =
            Shard.weight fleet.(0) +. Shard.weight fleet.(2)
          in
          Alcotest.(check (float 1e-9)) "coverage = surviving weight" expected coverage;
          Alcotest.(check bool) "partial answers hint a retry" true (retry_after_s <> None);
          Alcotest.(check bool) "reason names the shard" true
            (String.length reason > 0);
          (match rsp.Protocol.rsp_theta with
          | Some _ -> ()
          | None -> Alcotest.fail "partial answers still carry the composed theta");
          Alcotest.(check (option int)) "two shards contributed" (Some 2)
            rsp.Protocol.rsp_batch
      | st -> Alcotest.failf "expected partial, got %s" (Protocol.status_tag st))

let test_refused_when_all_down () =
  with_fleet (fun fleet router ->
      Array.iter (fun s -> ignore (Shard.kill s)) fleet;
      let rsp = Router.submit router (req ~id:3 ~query:"sq" ()) in
      match rsp.Protocol.rsp_status with
      | Protocol.Refused _ -> ()
      | st -> Alcotest.failf "expected refused, got %s" (Protocol.status_tag st))

let test_shard_scoped_queries () =
  with_fleet (fun fleet router ->
      let rsp = Router.submit router (req ~id:4 ~query:"sq" ~shards:[ 0; 2 ] ()) in
      (match rsp.Protocol.rsp_status with
      | Protocol.Answered | Protocol.Degraded _ ->
          Alcotest.(check (option int)) "only the scoped shards ran" (Some 2)
            rsp.Protocol.rsp_batch
      | st -> Alcotest.failf "scoped query failed: %s" (Protocol.status_tag st));
      (* scoping away the dead shard keeps full (scoped) coverage *)
      Alcotest.(check bool) "killed shard 1" true (Shard.kill fleet.(1));
      (match (Router.submit router (req ~id:5 ~query:"sq" ~shards:[ 0; 2 ] ())).rsp_status with
      | Protocol.Answered | Protocol.Degraded _ -> ()
      | st -> Alcotest.failf "scope excluding the dead shard: %s" (Protocol.status_tag st));
      (* unknown ids and empty scopes are protocol errors, not fan-outs *)
      (match (Router.submit router (req ~id:6 ~query:"sq" ~shards:[ 7 ] ())).rsp_status with
      | Protocol.Failed _ -> ()
      | st -> Alcotest.failf "unknown shard id: %s" (Protocol.status_tag st));
      match (Router.submit router (req ~id:7 ~query:"sq" ~shards:[] ())).rsp_status with
      | Protocol.Failed _ -> ()
      | st -> Alcotest.failf "empty scope: %s" (Protocol.status_tag st))

let test_ctl_plane_gating () =
  with_fleet (fun _fleet router ->
      match (Router.submit router (req ~id:8 ~query:"ctl:health" ())).rsp_status with
      | Protocol.Failed _ -> ()
      | st -> Alcotest.failf "ctl must be disabled by default, got %s" (Protocol.status_tag st));
  with_fleet ~config:{ Router.default_config with rt_allow_ctl = true } (fun fleet router ->
      (match Router.submit router (req ~id:9 ~query:"ctl:health" ()) with
      | { Protocol.rsp_status = Protocol.Answered; rsp_theta = Some states; _ } ->
          Alcotest.(check int) "one state per shard" (Array.length fleet) (Array.length states);
          Array.iter (fun c -> Alcotest.(check (float 0.)) "running = 2." 2. c) states
      | _ -> Alcotest.fail "ctl:health must answer with the state vector");
      (match Router.submit router (req ~id:10 ~query:"ctl:kill:1" ()) with
      | { Protocol.rsp_status = Protocol.Answered; _ } -> ()
      | _ -> Alcotest.fail "ctl:kill:1 must succeed on a running shard");
      Alcotest.(check string) "ctl kill crashed the shard" "crashed"
        (Shard.state_to_string (Shard.state fleet.(1)));
      match Router.submit router (req ~id:11 ~query:"ctl:kill:9" ()) with
      | { Protocol.rsp_status = Protocol.Failed _; _ } -> ()
      | _ -> Alcotest.fail "ctl:kill out of range must fail")

(* --- supervisor: crash detection, restart, quarantine --- *)

let wait_for ?(seconds = 5.) what pred =
  let deadline = Unix.gettimeofday () +. seconds in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let test_supervisor_restarts_killed_shard () =
  with_fleet (fun fleet router ->
      let supervisor = Supervisor.start ~shards:fleet () in
      Fun.protect
        ~finally:(fun () -> Supervisor.stop supervisor)
        (fun () ->
          Alcotest.(check bool) "killed" true (Shard.kill fleet.(1));
          wait_for "supervised restart" (fun () -> Shard.state fleet.(1) = Shard.Running);
          Alcotest.(check int) "one restart recorded" 1 (Supervisor.restarts supervisor);
          (* the revived shard serves again through the router *)
          match (Router.submit router (req ~id:20 ~query:"sq" ())).rsp_status with
          | Protocol.Answered | Protocol.Degraded _ -> ()
          | st -> Alcotest.failf "restarted fleet still degraded: %s" (Protocol.status_tag st)))

let test_supervisor_quarantines_flapping_shard () =
  with_fleet (fun fleet _router ->
      let cfg =
        {
          Supervisor.default_config with
          su_backoff_base_s = 0.005;
          su_backoff_max_s = 0.01;
          su_quarantine_after = 2;
        }
      in
      let supervisor = Supervisor.start ~config:cfg ~shards:fleet () in
      Fun.protect
        ~finally:(fun () -> Supervisor.stop supervisor)
        (fun () ->
          (* kill it every time it comes back: strikes accumulate inside the
             flap window until the supervisor gives up *)
          wait_for "quarantine verdict" ~seconds:10. (fun () ->
              (if Shard.state fleet.(2) = Shard.Running then ignore (Shard.kill fleet.(2)));
              Shard.state fleet.(2) = Shard.Quarantined);
          Alcotest.(check bool) "quarantine counted" true
            (Supervisor.quarantines supervisor >= 1);
          Alcotest.(check (list int)) "quarantined list" [ 2 ]
            (Supervisor.quarantined supervisor)))

(* --- Net.Client fleet contracts --- *)

(* A scripted server speaking raw protocol lines: replies to each request
   line with the pre-programmed response for its arrival index. *)
let scripted_server ~path script =
  (try Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 1;
  Thread.create
    (fun () ->
      let conn, _ = Unix.accept sock in
      let reader = Net.Io.reader conn in
      let i = ref 0 in
      (try
         let continue = ref true in
         while !continue do
           match Net.Io.read_line reader with
           | `Line line -> (
               match Protocol.decode_request line with
               | Ok req ->
                   let rsp = script !i req in
                   incr i;
                   Net.Io.write_all conn (Protocol.encode_response rsp ^ "\n")
               | Error _ -> continue := false)
           | _ -> continue := false
         done
       with _ -> ());
      (try Unix.close conn with Unix.Unix_error _ -> ());
      Unix.close sock)
    ()

let base_rsp req status =
  {
    Protocol.rsp_id = req.Protocol.req_id;
    rsp_seq = 0;
    rsp_status = status;
    rsp_theta = Some [| 0.1; 0.2 |];
    rsp_source = Some "fleet";
    rsp_update_index = None;
    rsp_batch = Some 2;
    rsp_queue_wait_s = None;
    rsp_spent_eps = None;
    rsp_spent_delta = None;
    rsp_epoch = None;
    rsp_body = None;
  }

let test_client_partial_is_success () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "pmw-router-client.sock" in
  let served = Atomic.make 0 in
  let srv =
    scripted_server ~path (fun i req ->
        Atomic.incr served;
        let status =
          if i = 0 then
            Protocol.Partial
              {
                missing_shards = [ 1 ];
                coverage = 0.66;
                retry_after_s = Some 0.01;
                reason = "shard 1: crashed";
              }
          else Protocol.Answered
        in
        base_rsp req status)
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let client = Net.Client.connect ~deadline_s:2. path in
      (match Net.Client.call_with_retry client (req ~rid:"r1" ~id:1 ~query:"sq" ()) with
      | Ok { Protocol.rsp_status = Protocol.Partial { missing_shards; _ }; _ } ->
          Alcotest.(check (list int)) "partial surfaced to the caller" [ 1 ] missing_shards
      | Ok rsp ->
          Alcotest.failf "expected the Partial back, got %s"
            (Protocol.status_tag rsp.Protocol.rsp_status)
      | Error e -> Alcotest.failf "call failed: %s" (Net.Client.error_to_string e));
      Alcotest.(check int) "exactly one wire call: Partial was NOT retried" 1
        (Atomic.get served);
      (* second call drains the scripted Answered so the server thread exits *)
      (match Net.Client.call client (req ~id:2 ~query:"sq" ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "drain call failed: %s" (Net.Client.error_to_string e));
      Net.Client.close client)

let test_client_retry_deadline_caps_wall_clock () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "pmw-router-deadline.sock" in
  let srv =
    scripted_server ~path (fun _ req ->
        (* always push back with a fat hint: only the deadline can end this *)
        base_rsp req (Protocol.Rejected { retry_after_s = Some 0.4; reason = "busy" }))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let client = Net.Client.connect ~deadline_s:2. path in
      let policy =
        {
          Net.Client.rp_max_attempts = 1000;
          rp_base_delay_s = 0.05;
          rp_max_delay_s = 0.5;
          rp_deadline_s = 0.5;
          rp_seed = 1L;
        }
      in
      let t0 = Unix.gettimeofday () in
      (match Net.Client.call_with_retry ~policy client (req ~rid:"r1" ~id:1 ~query:"sq" ()) with
      | Ok { Protocol.rsp_status = Protocol.Rejected _; _ } -> ()
      | Ok rsp ->
          Alcotest.failf "expected the latest Rejected, got %s"
            (Protocol.status_tag rsp.Protocol.rsp_status)
      | Error e -> Alcotest.failf "call failed: %s" (Net.Client.error_to_string e));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "1000-attempt loop ended by the %.1fs deadline (took %.2fs)" 0.5 elapsed)
        true
        (elapsed < 1.5);
      Net.Client.close client;
      ignore srv)

let () =
  Alcotest.run "pmw_router"
    [
      ( "compose",
        [
          Alcotest.test_case "full cover answers" `Quick test_full_cover_answers;
          Alcotest.test_case "partial when a shard is down" `Quick
            test_partial_when_a_shard_is_down;
          Alcotest.test_case "refused when all down" `Quick test_refused_when_all_down;
          Alcotest.test_case "shard-scoped queries" `Quick test_shard_scoped_queries;
          Alcotest.test_case "ctl plane gating" `Quick test_ctl_plane_gating;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "restarts a killed shard" `Quick
            test_supervisor_restarts_killed_shard;
          Alcotest.test_case "quarantines a flapping shard" `Quick
            test_supervisor_quarantines_flapping_shard;
        ] );
      ( "client",
        [
          Alcotest.test_case "partial is success (no retry)" `Quick
            test_client_partial_is_success;
          Alcotest.test_case "retry deadline caps wall clock" `Quick
            test_client_retry_deadline_caps_wall_clock;
        ] );
    ]
