(* Tests for the serving fleet's shard layer (lib/server/shard.ml):
   partition laws (disjoint, jointly exhaustive — the precondition for
   parallel composition), the shard lifecycle (start, kill, journal-driven
   restart, quarantine, drain), per-shard journal independence (corrupting
   one shard's journal cannot perturb another's recovery), and the
   qcheck property that the fleet-level account [Budget.spent_parallel]
   is exactly the coordinate-wise max over per-shard ledgers. *)

module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain_ = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Budget = Pmw_core.Budget
module Session = Pmw_session.Session
module Pool = Pmw_parallel.Pool
module Protocol = Pmw_server.Protocol
module Broker = Pmw_server.Broker
module Shard = Pmw_server.Shard
module Journal = Pmw_server.Journal
module Rng = Pmw_rng.Rng

(* --- fixture: the small regression setup the server tests use --- *)

let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 ()
let domain = Domain_.unit_ball ~dim:2
let privacy = Params.create ~eps:1. ~delta:1e-6

let dataset =
  Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000
    (Rng.create ~seed:7 ())

let config () =
  Config.practical ~universe ~privacy ~alpha:0.02 ~beta:0.05 ~scale:2. ~k:14 ~t_max:8
    ~solver_iters:120 ()

let panel =
  [
    ("sq", Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ());
    ("huber", Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ());
  ]

let resolve name = List.assoc_opt name panel

let mk_shard ?journal_path ~id ~block () =
  Shard.create ~id
    ~weight:(float_of_int (Dataset.size block) /. float_of_int (Dataset.size dataset))
    ?journal_path
    ~make_session:(fun tel ->
      (* runs on the shard domain: inline pool, incarnation-private rng *)
      let pool = Pool.create ~domains:1 () in
      Session.create ~pool ~telemetry:tel
        ~label:(Printf.sprintf "shard%d" id)
        ~config:(config ()) ~dataset:block
        ~rng:(Rng.create ~seed:(100 + id) ())
        ())
    ~resolve ()

let req ?rid ?shards ~id ~analyst ~query () =
  {
    Protocol.req_id = id;
    req_analyst = analyst;
    req_query = query;
    req_rid = rid;
    req_shards = shards;
    req_trace = None;
    req_pspan = None;
    req_rows = None;
  }

let must_start s =
  match Shard.start s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shard %d failed to start: %s" (Shard.id s) m

let in_tmp name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmw-shard-%s-%d" name (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

(* --- partition laws --- *)

let row_fp ds = Array.to_list (Dataset.rows ds)

let check_partition ~by ~shards () =
  let blocks = Shard.partition dataset ~by ~shards in
  Alcotest.(check int) "block count" shards (List.length blocks);
  let total = List.fold_left (fun acc b -> acc + Dataset.size b) 0 blocks in
  Alcotest.(check int) "jointly exhaustive" (Dataset.size dataset) total;
  (* disjointness + exhaustiveness as a multiset equation: the blocks'
     rows, re-sorted, are exactly the dataset's rows *)
  let all = List.concat_map row_fp blocks |> List.sort compare in
  let orig = row_fp dataset |> List.sort compare in
  Alcotest.(check bool) "same rows, each exactly once" true (all = orig)

let test_partition_block () = check_partition ~by:Shard.Block ~shards:4 ()
let test_partition_hash () = check_partition ~by:Shard.Hash ~shards:4 ()

let test_partition_block_is_contiguous () =
  let blocks = Shard.partition dataset ~by:Shard.Block ~shards:3 in
  let rebuilt = List.concat_map row_fp blocks in
  Alcotest.(check bool) "block partition preserves row order" true (rebuilt = row_fp dataset)

let test_partition_rejects_bad_counts () =
  (match Shard.partition dataset ~by:Shard.Block ~shards:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards = 0 must be rejected");
  match Shard.partition dataset ~by:Shard.Block ~shards:(Dataset.size dataset + 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "more shards than rows must be rejected"

(* --- lifecycle --- *)

let test_lifecycle_start_submit_stop () =
  let block = List.hd (Shard.partition dataset ~by:Shard.Block ~shards:2) in
  let s = mk_shard ~id:0 ~block () in
  Alcotest.(check string) "starts stopped" "stopped" (Shard.state_to_string (Shard.state s));
  Alcotest.(check bool) "submit before start" true
    (Shard.submit s (req ~id:0 ~analyst:"a" ~query:"sq" ()) = None);
  must_start s;
  Alcotest.(check string) "running" "running" (Shard.state_to_string (Shard.state s));
  (match Shard.start s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double start must be refused");
  (match Shard.submit s (req ~id:1 ~analyst:"a" ~query:"sq" ()) with
  | Some rsp -> (
      match rsp.Protocol.rsp_status with
      | Protocol.Answered | Protocol.Degraded _ -> ()
      | st -> Alcotest.failf "unexpected verdict %s" (Protocol.status_tag st))
  | None -> Alcotest.fail "running shard refused a submit");
  let spent = Shard.spent s in
  Alcotest.(check bool) "an answered query spent budget" true (spent.Params.eps > 0.);
  Shard.stop s;
  Alcotest.(check string) "stopped after drain" "stopped"
    (Shard.state_to_string (Shard.state s));
  Alcotest.(check bool) "submit after stop" true
    (Shard.submit s (req ~id:2 ~analyst:"a" ~query:"sq" ()) = None)

let test_kill_then_journal_restart () =
  in_tmp "restart" (fun dir ->
      let jp = Filename.concat dir "s0.journal" in
      let block = List.hd (Shard.partition dataset ~by:Shard.Block ~shards:2) in
      let s = mk_shard ~journal_path:jp ~id:0 ~block () in
      must_start s;
      let rsp1 =
        match Shard.submit s (req ~rid:"r-1" ~id:1 ~analyst:"a" ~query:"sq" ()) with
        | Some r -> r
        | None -> Alcotest.fail "first submit refused"
      in
      let spent_before = Shard.spent s in
      Alcotest.(check bool) "killed" true (Shard.kill s);
      Alcotest.(check bool) "kill is not idempotent on a dead shard" false (Shard.kill s);
      Alcotest.(check string) "crashed" "crashed" (Shard.state_to_string (Shard.state s));
      Alcotest.(check bool) "crashed shard refuses submits" true
        (Shard.submit s (req ~id:2 ~analyst:"a" ~query:"sq" ()) = None);
      (* a crashed shard still reports its last known spend — the fleet
         account must never shrink because a shard died *)
      Alcotest.(check (float 0.)) "spend survives the crash" spent_before.Params.eps
        (Shard.spent s).Params.eps;
      let t0 = Unix.gettimeofday () in
      must_start s;
      let boot_s = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "journal restart under a second (took %.3fs)" boot_s)
        true (boot_s < 1.);
      Alcotest.(check int) "incarnation bumped" 2 (Shard.incarnation s);
      (* recovery is journal-driven: the replayed ledger covers everything
         the first incarnation spent *)
      let spent_after = Shard.spent s in
      Alcotest.(check bool) "replayed spend covers pre-crash spend" true
        (spent_after.Params.eps >= spent_before.Params.eps -. 1e-12);
      (* the journal's recorded answer serves the retried rid byte-for-byte *)
      (match Shard.submit s (req ~rid:"r-1" ~id:1 ~analyst:"a" ~query:"sq" ()) with
      | Some rsp2 ->
          Alcotest.(check bool) "dedup re-serves the recorded answer" true
            (rsp2.Protocol.rsp_theta = rsp1.Protocol.rsp_theta)
      | None -> Alcotest.fail "restarted shard refused the retried rid");
      Shard.stop s)

let test_quarantine_blocks_start () =
  let block = List.hd (Shard.partition dataset ~by:Shard.Block ~shards:2) in
  let s = mk_shard ~id:0 ~block () in
  Shard.quarantine s;
  Alcotest.(check string) "quarantined" "quarantined"
    (Shard.state_to_string (Shard.state s));
  (match Shard.start s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "a quarantined shard must refuse to start");
  Alcotest.(check bool) "quarantined shard refuses submits" true
    (Shard.submit s (req ~id:0 ~analyst:"a" ~query:"sq" ()) = None);
  Shard.stop s;
  Alcotest.(check string) "stop preserves the quarantine verdict" "quarantined"
    (Shard.state_to_string (Shard.state s))

(* --- per-shard journal independence --- *)

(* Two shards journal to their own files; corrupting (then deleting) shard
   0's journal must leave shard 1's recovery bit-for-bit unperturbed. *)
let test_journal_independence () =
  in_tmp "indep" (fun dir ->
      let blocks = Shard.partition dataset ~by:Shard.Block ~shards:2 in
      let jp i = Filename.concat dir (Printf.sprintf "s%d.journal" i) in
      let shards =
        List.mapi (fun i block -> mk_shard ~journal_path:(jp i) ~id:i ~block ()) blocks
      in
      List.iter must_start shards;
      List.iteri
        (fun i s ->
          ignore
            (Shard.submit s
               (req ~rid:(Printf.sprintf "r%d" i) ~id:i ~analyst:"a" ~query:"sq" ())))
        shards;
      let s0 = List.nth shards 0 and s1 = List.nth shards 1 in
      let spent1 = Shard.spent s1 in
      Alcotest.(check bool) "both killed" true (Shard.kill s0 && Shard.kill s1);
      (* torn tail on shard 0's journal: chop the last 7 bytes *)
      let len = (Unix.stat (jp 0)).Unix.st_size in
      let fd = Unix.openfile (jp 0) [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (max 0 (len - 7));
      Unix.close fd;
      must_start s1;
      Alcotest.(check bool) "shard 1 recovered its own spend" true
        ((Shard.spent s1).Params.eps >= spent1.Params.eps -. 1e-12);
      must_start s0;
      Shard.stop s0;
      Shard.stop s1;
      (* now nuke shard 0's journal entirely: shard 1 must still restart *)
      Sys.remove (jp 0);
      Alcotest.(check bool) "both restartable after drain" true
        (match (Shard.start s0, Shard.start s1) with Ok (), Ok () -> true | _ -> false);
      Shard.stop s0;
      Shard.stop s1)

(* --- fleet accounting: spent_parallel --- *)

let qcheck_spent_parallel_is_max =
  QCheck.Test.make ~name:"Budget.spent_parallel = coordinate-wise max" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 0 8)
        (pair (QCheck.map Float.abs (float_bound_exclusive 10.)) (float_bound_exclusive 0.1)))
    (fun spends ->
      let pots =
        List.map
          (fun (e, d) ->
            let e = Float.abs e and d = Float.abs d in
            let b = Budget.create (Params.create ~eps:(e +. 1.) ~delta:(d +. 1e-3)) in
            (match Budget.request b (Params.create ~eps:e ~delta:d) with
            | Ok _ -> ()
            | Error m -> QCheck.Test.fail_reportf "request refused: %s" m);
            b)
          spends
      in
      let got = Budget.spent_parallel pots in
      let exp_eps =
        List.fold_left (fun acc b -> Float.max acc (Budget.spent b).Params.eps) 0. pots
      and exp_delta =
        List.fold_left (fun acc b -> Float.max acc (Budget.spent b).Params.delta) 0. pots
      in
      got.Params.eps = exp_eps && got.Params.delta = exp_delta)

(* The fleet-level theorem the sharding design rests on: for ANY partition
   arity, serving traffic through disjoint shards and folding their ledgers
   with the parallel-composition rule accounts at most one shard's pot —
   and exactly the max of what the shards actually spent. *)
let test_fleet_account_equals_max_over_any_partition () =
  List.iter
    (fun shards ->
      let blocks = Shard.partition dataset ~by:Shard.Block ~shards in
      let fleet = List.mapi (fun i block -> mk_shard ~id:i ~block ()) blocks in
      List.iter must_start fleet;
      List.iteri
        (fun i s ->
          ignore (Shard.submit s (req ~id:i ~analyst:"a" ~query:"sq" ()));
          if i mod 2 = 0 then
            ignore (Shard.submit s (req ~id:(1000 + i) ~analyst:"a" ~query:"huber" ())))
        fleet;
      let pots = List.filter_map Shard.budget fleet in
      Alcotest.(check int) "every running shard exposes its pot" shards (List.length pots);
      let fleet_spent = Budget.spent_parallel pots in
      let max_eps =
        List.fold_left (fun acc s -> Float.max acc (Shard.spent s).Params.eps) 0. fleet
      in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "%d-shard fleet account = max shard spend" shards)
        max_eps fleet_spent.Params.eps;
      Alcotest.(check bool) "fleet spend bounded by one pot" true
        (fleet_spent.Params.eps <= privacy.Params.eps +. 1e-9);
      List.iter Shard.stop fleet)
    [ 2; 3; 4 ]

let () =
  Alcotest.run "pmw_shard"
    [
      ( "partition",
        [
          Alcotest.test_case "block: disjoint + exhaustive" `Quick test_partition_block;
          Alcotest.test_case "hash: disjoint + exhaustive" `Quick test_partition_hash;
          Alcotest.test_case "block keeps row order" `Quick test_partition_block_is_contiguous;
          Alcotest.test_case "rejects bad shard counts" `Quick test_partition_rejects_bad_counts;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "start, submit, drain" `Quick test_lifecycle_start_submit_stop;
          Alcotest.test_case "kill then journal restart" `Quick test_kill_then_journal_restart;
          Alcotest.test_case "quarantine blocks start" `Quick test_quarantine_blocks_start;
        ] );
      ( "journal",
        [ Alcotest.test_case "per-shard independence" `Quick test_journal_independence ] );
      ( "accounting",
        [
          QCheck_alcotest.to_alcotest qcheck_spent_parallel_is_max;
          Alcotest.test_case "fleet account = max over any partition" `Quick
            test_fleet_account_equals_max_over_any_partition;
        ] );
    ]
