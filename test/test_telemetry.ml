(* Tests for the telemetry layer: counter/ledger bookkeeping with and
   without a sink, span pairing and exception safety, the JSONL round-trip
   through the Trace parser, the trace validator's defect detection, and
   the acceptance property — the privacy ledger replayed from a trace alone
   equals the live Accountant/Budget totals to 1e-12. *)

module Telemetry = Pmw_telemetry.Telemetry
module Trace = Pmw_telemetry.Trace
module Params = Pmw_dp.Params
module Universe = Pmw_data.Universe
module Rng = Pmw_rng.Rng

let field e name = List.assoc_opt name e.Telemetry.fields

let float_field e name =
  match field e name with
  | Some (Telemetry.Float f) -> f
  | Some (Telemetry.Int i) -> float_of_int i
  | _ -> Alcotest.failf "event %s: no float field %S" e.Telemetry.name name

let str_field e name =
  match field e name with
  | Some (Telemetry.Str s) -> s
  | _ -> Alcotest.failf "event %s: no string field %S" e.Telemetry.name name

(* A deterministic clock: each read advances by 1 ms. *)
let counter_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 0.001;
    !t

(* --- counters and ledgers are authoritative without a sink --- *)

let test_null_instance_tracks () =
  let t = Telemetry.null () in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  Telemetry.incr t "queries";
  Telemetry.incr t "queries";
  Telemetry.incr ~by:3 t "mw_updates";
  Alcotest.(check int) "queries" 2 (Telemetry.counter t "queries");
  Alcotest.(check int) "mw_updates" 3 (Telemetry.counter t "mw_updates");
  Alcotest.(check int) "unknown counter" 0 (Telemetry.counter t "nope");
  Telemetry.set_counter t "queries" 10;
  Alcotest.(check int) "set_counter" 10 (Telemetry.counter t "queries");
  Telemetry.debit t ~ledger:"sv" ~mechanism:"sv-epoch" ~eps:0.25 ~delta:1e-7;
  Telemetry.debit t ~ledger:"sv" ~mechanism:"sv-epoch" ~eps:0.25 ~delta:1e-7;
  let eps, delta = Telemetry.ledger_total t "sv" in
  Alcotest.(check (float 1e-15)) "ledger eps" 0.5 eps;
  Alcotest.(check (float 1e-20)) "ledger delta" 2e-7 delta;
  (* spans are free no-ops when disabled: passthrough, no events *)
  Alcotest.(check int) "span passthrough" 41 (Telemetry.span t "s" (fun () -> 41));
  Alcotest.(check (list pass)) "no events buffered" [] (Telemetry.events t)

let test_independent_instances () =
  let a = Telemetry.null () and b = Telemetry.null () in
  Telemetry.incr a "x";
  Alcotest.(check int) "b unaffected" 0 (Telemetry.counter b "x")

(* --- ring sink events --- *)

let ring_instance () =
  Telemetry.create ~clock:(counter_clock ()) ~sink:(Telemetry.Sink.ring ()) ()

let test_ring_events () =
  let t = ring_instance () in
  Telemetry.mark t "hello" ~fields:[ ("n", Telemetry.Int 1) ];
  Telemetry.incr t "c";
  Telemetry.observe t "v" 2.5;
  let evs = Telemetry.events t in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let kinds = List.map (fun e -> Telemetry.kind_to_string e.Telemetry.kind) evs in
  Alcotest.(check (list string)) "kinds" [ "mark"; "count"; "observe" ] kinds;
  (* timestamps non-decreasing *)
  let ts = List.map (fun e -> e.Telemetry.ts) evs in
  Alcotest.(check bool) "monotone ts" true (List.sort compare ts = ts)

let test_span_nesting_and_exn () =
  let t = ring_instance () in
  let r =
    Telemetry.span t "outer" (fun () ->
        ignore (Telemetry.span t "inner" (fun () -> 1));
        2)
  in
  Alcotest.(check int) "result" 2 r;
  (match Telemetry.span t "boom" (fun () -> failwith "kaput") with
  | exception Failure m -> Alcotest.(check string) "re-raised" "kaput" m
  | _ -> Alcotest.fail "span swallowed the exception");
  let evs = Telemetry.events t in
  (* outer-begin inner-begin inner-end outer-end boom-begin boom-end *)
  let names = List.map (fun e -> e.Telemetry.name) evs in
  Alcotest.(check (list string)) "order"
    [ "outer"; "inner"; "inner"; "outer"; "boom"; "boom" ]
    names;
  let ends =
    List.filter (fun e -> e.Telemetry.kind = Telemetry.Span_end) evs
  in
  let boom = List.nth ends 2 in
  (match field boom "ok" with
  | Some (Telemetry.Bool false) -> ()
  | _ -> Alcotest.fail "failed span must end with ok=false");
  Alcotest.(check bool) "duration recorded" true (float_field boom "dur_s" > 0.);
  (* span aggregation survives in the instance *)
  match Telemetry.span_stats t "outer" with
  | None -> Alcotest.fail "no outer stats"
  | Some s -> Alcotest.(check int) "outer calls" 1 s.Telemetry.span_calls

let test_observations () =
  let t = ring_instance () in
  List.iter (Telemetry.observe t "err") [ 1.; 2.; 3.; 4. ];
  match Telemetry.observation t "err" with
  | None -> Alcotest.fail "no stats"
  | Some o ->
      Alcotest.(check int) "count" 4 o.Telemetry.obs_count;
      Alcotest.(check (float 1e-12)) "mean" 2.5 (o.Telemetry.obs_sum /. 4.);
      Alcotest.(check (float 1e-12)) "max" 4. o.Telemetry.obs_max

(* --- JSONL round-trip through the Trace parser --- *)

let with_temp_trace f =
  let path = Filename.temp_file "pmw_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_jsonl_roundtrip () =
  with_temp_trace (fun path ->
      let t =
        Telemetry.create ~clock:(counter_clock ())
          ~sink:(Telemetry.Sink.jsonl_file path) ()
      in
      Telemetry.set_round t 3;
      Telemetry.mark t "m"
        ~fields:
          [
            ("f", Telemetry.Float 0.1);
            ("i", Telemetry.Int (-7));
            ("s", Telemetry.Str "a \"quoted\"\nline");
            ("b", Telemetry.Bool true);
            ("nan", Telemetry.Float Float.nan);
            ("inf", Telemetry.Float Float.neg_infinity);
          ];
      Telemetry.debit t ~ledger:"l" ~mechanism:"mech" ~eps:(1. /. 3.) ~delta:1e-9;
      Telemetry.close t;
      match Trace.load ~path with
      | Error m -> Alcotest.fail m
      | Ok [ m; d ] ->
          Alcotest.(check int) "round" 3 m.Telemetry.round;
          (* floats round-trip bit-exactly through %.17g *)
          Alcotest.(check bool) "float exact" true (float_field m "f" = 0.1);
          Alcotest.(check bool) "int" true (field m "i" = Some (Telemetry.Int (-7)));
          Alcotest.(check string) "escaped string" "a \"quoted\"\nline" (str_field m "s");
          Alcotest.(check bool) "bool" true (field m "b" = Some (Telemetry.Bool true));
          Alcotest.(check bool) "nan" true (Float.is_nan (float_field m "nan"));
          Alcotest.(check bool) "-inf" true (float_field m "inf" = Float.neg_infinity);
          Alcotest.(check bool) "debit eps exact" true (float_field d "eps" = 1. /. 3.);
          Alcotest.(check string) "mechanism" "mech" (str_field d "mechanism")
      | Ok evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_load_reports_bad_line () =
  with_temp_trace (fun path ->
      let oc = open_out path in
      output_string oc "{\"ts\":0.0,\"round\":-1,\"kind\":\"mark\",\"name\":\"x\"}\nnot json\n";
      close_out oc;
      match Trace.load ~path with
      | Ok _ -> Alcotest.fail "accepted malformed line"
      | Error m ->
          (* the parser reports the offending line number *)
          let has_line2 =
            let rec scan i =
              i + 6 <= String.length m && (String.sub m i 6 = "line 2" || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "line number in error" true has_line2)

(* --- validator defect detection --- *)

let ev ?(ts = 0.) ?(round = -1) ?(fields = []) kind name =
  { Telemetry.ts; round; kind; name; fields }

let test_validate_catches_defects () =
  let ok_events =
    [
      ev ~ts:0.1 ~round:1 Telemetry.Mark "a";
      ev ~ts:0.2 ~round:2 Telemetry.Mark "b";
    ]
  in
  (match Trace.validate ok_events with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid trace rejected: %s" m);
  (* non-monotone rounds *)
  (match
     Trace.validate
       [ ev ~ts:0.1 ~round:5 Telemetry.Mark "a"; ev ~ts:0.2 ~round:4 Telemetry.Mark "b" ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-monotone rounds accepted");
  (* non-monotone timestamps *)
  (match
     Trace.validate
       [ ev ~ts:1. Telemetry.Mark "a"; ev ~ts:0.5 Telemetry.Mark "b" ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "time travel accepted");
  (* unbalanced span *)
  (match
     Trace.validate
       [ ev ~fields:[ ("id", Telemetry.Int 0) ] Telemetry.Span_begin "s" ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "open span accepted");
  (* debit running total disagrees with replayed sum *)
  (match
     Trace.validate
       [
         ev
           ~fields:
             [
               ("mechanism", Telemetry.Str "m");
               ("eps", Telemetry.Float 0.5);
               ("delta", Telemetry.Float 0.);
               ("eps_total", Telemetry.Float 0.9);
               ("delta_total", Telemetry.Float 0.);
             ]
           Telemetry.Debit "l";
       ]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inconsistent ledger total accepted");
  (* ledger.final mark disagrees with the debits *)
  match
    Trace.validate
      [
        ev
          ~fields:
            [
              ("mechanism", Telemetry.Str "m");
              ("eps", Telemetry.Float 0.5);
              ("delta", Telemetry.Float 0.);
              ("eps_total", Telemetry.Float 0.5);
              ("delta_total", Telemetry.Float 0.);
            ]
          Telemetry.Debit "l";
        ev
          ~ts:0.1
          ~fields:
            [
              ("ledger", Telemetry.Str "l");
              ("eps", Telemetry.Float 0.7);
              ("delta", Telemetry.Float 0.);
            ]
          Telemetry.Mark "ledger.final";
      ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad ledger.final accepted"

(* --- acceptance: ledger replay from a trace equals the live accountant --- *)

let test_accountant_trace_equality () =
  with_temp_trace (fun path ->
      let t = Telemetry.create ~sink:(Telemetry.Sink.jsonl_file path) () in
      let acct = Pmw_dp.Accountant.create ~telemetry:t ~label:"oracle" () in
      let rng = Rng.create ~seed:11 () in
      for _ = 1 to 57 do
        (* awkward, non-representable spends *)
        let eps = 0.01 +. (0.3 *. Rng.uniform rng ~lo:0. ~hi:1.) in
        Pmw_dp.Accountant.spend ~mechanism:"oracle-call" acct
          (Params.create ~eps ~delta:(1e-9 *. eps))
      done;
      Telemetry.emit_ledger_finals t;
      Telemetry.close t;
      let events = match Trace.load ~path with Ok e -> e | Error m -> Alcotest.fail m in
      (match Trace.validate events with
      | Ok () -> ()
      | Error m -> Alcotest.failf "trace invalid: %s" m);
      let live = Pmw_dp.Accountant.total_basic acct in
      match List.assoc_opt "oracle" (Trace.ledger_totals events) with
      | None -> Alcotest.fail "no oracle ledger in trace"
      | Some (eps, delta) ->
          Alcotest.(check bool) "eps replay to 1e-12" true
            (Float.abs (eps -. live.Params.eps) <= 1e-12);
          Alcotest.(check bool) "delta replay" true
            (Float.abs (delta -. live.Params.delta) <= 1e-15))

(* A small linear-PMW run traced end to end: the "sv" + "linear" ledgers in
   the trace must replay to the spend the mechanism's own parameters imply,
   and the whole trace must validate. *)
let test_linear_run_trace () =
  with_temp_trace (fun path ->
      let t = Telemetry.create ~sink:(Telemetry.Sink.jsonl_file path) () in
      let universe = Universe.hypercube ~d:6 () in
      let rng = Rng.create ~seed:3 () in
      let hist = Pmw_data.Synth.zipf_histogram ~universe ~s:1.1 rng in
      let dataset = Pmw_data.Dataset.of_histogram ~n:4_000 hist rng in
      let lp =
        Pmw_core.Linear_pmw.create ~telemetry:t ~universe ~dataset
          ~privacy:(Params.create ~eps:1. ~delta:1e-6)
          ~alpha:0.05 ~beta:0.05 ~k:40 ~t_max:12 ~rng ()
      in
      let queries =
        List.init 12 (fun j ->
            Pmw_core.Linear_pmw.counting_query
              ~name:(Printf.sprintf "bit%d" (j mod 6))
              (fun x -> x.Pmw_data.Point.features.(j mod 6) > 0.))
      in
      List.iter (fun q -> ignore (Pmw_core.Linear_pmw.answer lp q)) queries;
      Telemetry.emit_ledger_finals t;
      Telemetry.close t;
      let events = match Trace.load ~path with Ok e -> e | Error m -> Alcotest.fail m in
      (match Trace.validate events with
      | Ok () -> ()
      | Error m -> Alcotest.failf "trace invalid: %s" m);
      let totals = Trace.ledger_totals events in
      let sv_failures = Telemetry.counter t "sv_failures" in
      let updates = Telemetry.counter t "mw_updates" in
      Alcotest.(check int) "every top updated MW" sv_failures updates;
      (* the trace replay must equal the live instance's ledger sums *)
      List.iter
        (fun (name, (live_eps, live_delta, _debits)) ->
          match List.assoc_opt name totals with
          | None -> Alcotest.failf "ledger %S missing from trace" name
          | Some (eps, delta) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s eps replay to 1e-12" name)
                true
                (Float.abs (eps -. live_eps) <= 1e-12);
              Alcotest.(check bool)
                (Printf.sprintf "%s delta replay" name)
                true
                (Float.abs (delta -. live_delta) <= 1e-15))
        (Telemetry.ledgers t);
      (if updates > 0 && not (List.mem_assoc "linear" totals) then
         Alcotest.fail "tops happened but no linear ledger");
      (* rounds advanced once per answered query *)
      let max_round =
        List.fold_left (fun acc e -> Int.max acc e.Telemetry.round) (-1) events
      in
      Alcotest.(check int) "rounds = queries" 12 max_round)

(* --- pool chunk timing is gated on verbosity --- *)

let test_pool_timing_verbosity () =
  let pool = Pmw_parallel.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pmw_parallel.Pool.shutdown pool)
    (fun () ->
      let quiet = Telemetry.create ~sink:(Telemetry.Sink.ring ()) ~verbose:false () in
      Pmw_parallel.Pool.set_telemetry pool (Some quiet);
      let n = (2 * Pmw_parallel.Pool.grain) + 17 in
      let a = Array.make n 1. in
      ignore
        (Pmw_parallel.Pool.parallel_reduce pool ~n ~neutral:0.
           ~chunk:(fun lo hi ->
             let s = ref 0. in
             for i = lo to hi - 1 do
               s := !s +. a.(i)
             done;
             !s)
           ~combine:( +. ));
      Alcotest.(check (list pass)) "quiet pool emits nothing" [] (Telemetry.events quiet);
      let loud = Telemetry.create ~sink:(Telemetry.Sink.ring ()) ~verbose:true () in
      Pmw_parallel.Pool.set_telemetry pool (Some loud);
      Pmw_parallel.Pool.parallel_for pool ~n (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- a.(i) +. 1.
          done);
      let evs = Telemetry.events loud in
      let batches = List.filter (fun e -> e.Telemetry.name = "pool.batch") evs in
      Alcotest.(check int) "one batch mark" 1 (List.length batches);
      let chunks = List.filter (fun e -> e.Telemetry.name = "pool.chunk_s") evs in
      Alcotest.(check int) "one observation per chunk"
        (Pmw_parallel.Pool.num_chunks n)
        (List.length chunks))

let () =
  Alcotest.run "pmw_telemetry"
    [
      ( "instance",
        [
          Alcotest.test_case "null tracks counters+ledgers" `Quick test_null_instance_tracks;
          Alcotest.test_case "instances independent" `Quick test_independent_instances;
          Alcotest.test_case "ring events" `Quick test_ring_events;
          Alcotest.test_case "span nesting + exceptions" `Quick test_span_nesting_and_exn;
          Alcotest.test_case "observations" `Quick test_observations;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "bad line reported" `Quick test_load_reports_bad_line;
          Alcotest.test_case "validator catches defects" `Quick test_validate_catches_defects;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "accountant = trace replay (1e-12)" `Quick
            test_accountant_trace_equality;
          Alcotest.test_case "linear run trace validates" `Quick test_linear_run_trace;
          Alcotest.test_case "pool timing verbosity gate" `Quick test_pool_timing_verbosity;
        ] );
    ]
