(* Tests for Pmw_erm: the single-query DP oracles (the paper's A').
   Each oracle must (a) return a point of the domain, (b) be useful — excess
   risk well below trivial — at generous budgets, and (c) improve with n
   (the Table 1 single-query column shapes). *)

module Vec = Pmw_linalg.Vec
module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Oracle = Pmw_erm.Oracle
module Oracles = Pmw_erm.Oracles
module Rng = Pmw_rng.Rng

let rng = Rng.create ~seed:71 ()

let universe = Universe.regression_grid ~d:2 ~levels:7 ~label_levels:7 ()
let theta_star = [| 0.6; -0.3 |]
let dataset n = Synth.linear_regression ~universe ~theta_star ~noise:0.1 ~n rng

let request ?(n = 100_000) ?(eps = 1.) ?(loss = Losses.squared ()) ?(dim = 2) () =
  {
    Oracle.dataset = dataset n;
    loss;
    domain = Domain.unit_ball ~dim;
    privacy = Params.create ~eps ~delta:1e-6;
    rng;
    solver_iters = 300;
  }

let run (o : Oracle.t) req = o.Oracle.run req

let test_exact_oracle_near_zero_risk () =
  let req = request ~n:20_000 () in
  let theta = run Oracles.exact req in
  let risk = Oracle.excess_risk req theta in
  Alcotest.(check bool) (Printf.sprintf "risk %.5f ~ 0" risk) true (risk < 5e-3)

let test_exact_oracle_finds_planted_signal () =
  let req = request ~n:50_000 () in
  let theta = run Oracles.exact req in
  (* With small label noise the empirical minimizer should point roughly at
     theta_star. *)
  let cos =
    Vec.dot (Vec.normalize2 theta) (Vec.normalize2 theta_star)
  in
  Alcotest.(check bool) (Printf.sprintf "cosine %.3f > 0.9" cos) true (cos > 0.9)

let feasible name (o : Oracle.t) req =
  for _ = 1 to 5 do
    let theta = run o req in
    Alcotest.(check bool) (name ^ " output feasible") true
      (Domain.contains ~tol:1e-6 req.Oracle.domain theta)
  done

let test_outputs_feasible () =
  let req = request ~n:5_000 ~eps:0.5 () in
  feasible "output_perturbation" Oracles.output_perturbation req;
  feasible "noisy_gd" (Oracles.noisy_gd ()) req;
  let glm_req = request ~n:5_000 ~eps:0.5 ~loss:(Losses.logistic ()) () in
  feasible "glm" (Oracles.glm ()) glm_req;
  let sc_req =
    request ~n:5_000 ~eps:0.5
      ~loss:(Losses.prox_quadratic ~sigma:1. ~target:(fun x -> x.Pmw_data.Point.features) ~dim:2 ())
      ()
  in
  feasible "strongly_convex" Oracles.strongly_convex sc_req

let mean_risk ?(trials = 5) (o : Oracle.t) req =
  let acc = ref 0. in
  for _ = 1 to trials do
    acc := !acc +. Oracle.excess_risk req (run o req)
  done;
  !acc /. float_of_int trials

let test_noisy_gd_useful_at_scale () =
  let risk = mean_risk (Oracles.noisy_gd ()) (request ~n:200_000 ~eps:2. ()) in
  Alcotest.(check bool) (Printf.sprintf "risk %.4f small" risk) true (risk < 0.05)

let test_noisy_gd_improves_with_n () =
  let small = mean_risk (Oracles.noisy_gd ()) (request ~n:2_000 ~eps:0.3 ()) in
  let large = mean_risk (Oracles.noisy_gd ()) (request ~n:200_000 ~eps:0.3 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "risk falls with n: %.4f -> %.4f" small large)
    true (large < small)

let test_output_perturbation_useful () =
  let risk = mean_risk Oracles.output_perturbation (request ~n:200_000 ~eps:2. ()) in
  Alcotest.(check bool) (Printf.sprintf "risk %.4f small" risk) true (risk < 0.1)

let test_strongly_convex_oracle () =
  let loss =
    Losses.prox_quadratic ~sigma:2. ~target:(fun x -> x.Pmw_data.Point.features) ~dim:2 ()
  in
  let req = request ~n:100_000 ~eps:1. ~loss () in
  let risk = mean_risk Oracles.strongly_convex req in
  Alcotest.(check bool) (Printf.sprintf "risk %.5f small" risk) true (risk < 0.01);
  (* and it must refuse non-strongly-convex losses *)
  Alcotest.check_raises "refuses merely convex"
    (Oracle.Unsupported "Oracles.strongly_convex: loss is not strongly convex") (fun () ->
      ignore (run Oracles.strongly_convex (request ~loss:(Losses.logistic ()) ())))

let test_laplace_output_oracle () =
  (* 1-d mean estimation: pure-eps Laplace output perturbation must beat the
     Gaussian version at equal budget (no sqrt(2 ln(1.25/delta)) factor). *)
  let u = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 () in
  let q (x : Pmw_data.Point.t) = if x.Pmw_data.Point.label > 0. then 1. else 0. in
  let loss = Losses.mean_estimation ~q ~name:"label>0" in
  let ds =
    Dataset.of_histogram ~n:20_000 (Pmw_data.Histogram.uniform u) (Rng.create ~seed:72 ())
  in
  let req eps =
    {
      Oracle.dataset = ds;
      loss;
      domain = Domain.interval ~lo:0. ~hi:1.;
      privacy = Params.create ~eps ~delta:1e-7;
      rng;
      solver_iters = 150;
    }
  in
  let risk o = mean_risk ~trials:9 o (req 0.01) in
  let lap = risk Oracles.laplace_output in
  let gauss = risk Oracles.strongly_convex in
  Alcotest.(check bool)
    (Printf.sprintf "laplace %.5f <= gaussian %.5f" lap gauss)
    true (lap <= gauss +. 1e-4);
  (* rejects non-strongly-convex losses *)
  Alcotest.check_raises "needs strong convexity"
    (Oracle.Unsupported "Oracles.laplace_output: loss is not strongly convex") (fun () ->
      ignore (run Oracles.laplace_output (request ~loss:(Losses.logistic ()) ())))

let test_glm_oracle_useful () =
  let u = Universe.labeled_hypercube ~d:4 ~labels:[| -1.; 1. |] () in
  let ts = Synth.random_unit_vector ~dim:4 rng in
  let ds = Synth.logistic_classification ~universe:u ~theta_star:ts ~margin:4. ~n:150_000 rng in
  let req =
    {
      Oracle.dataset = ds;
      loss = Losses.logistic ();
      domain = Domain.unit_ball ~dim:4;
      privacy = Params.create ~eps:1. ~delta:1e-6;
      rng;
      solver_iters = 300;
    }
  in
  let risk = mean_risk (Oracles.glm ()) req in
  Alcotest.(check bool) (Printf.sprintf "risk %.4f small" risk) true (risk < 0.05)

let test_glm_dimension_independence () =
  (* The GLM oracle's noise magnitude does not grow with d; the plain noisy-GD
     oracle's does (a factor ~sqrt d). Compare risks at d=8 under a tight
     budget: GLM should not be (much) worse than at d=3, and should beat
     noisy GD at d=8. Averaged over trials to tame randomness. *)
  let risk_at ~d oracle =
    let u = Universe.labeled_hypercube ~d ~labels:[| -1.; 1. |] () in
    let ts = Synth.random_unit_vector ~dim:d rng in
    let ds = Synth.logistic_classification ~universe:u ~theta_star:ts ~margin:4. ~n:20_000 rng in
    let req =
      {
        Oracle.dataset = ds;
        loss = Losses.logistic ();
        domain = Domain.unit_ball ~dim:d;
        privacy = Params.create ~eps:0.05 ~delta:1e-7;
        rng;
        solver_iters = 200;
      }
    in
    mean_risk ~trials:7 oracle req
  in
  let glm_d8 = risk_at ~d:8 (Oracles.glm ()) in
  let gd_d8 = risk_at ~d:8 (Oracles.noisy_gd ()) in
  Alcotest.(check bool)
    (Printf.sprintf "glm %.4f <= noisy_gd %.4f at d=8" glm_d8 gd_d8)
    true (glm_d8 <= gd_d8 +. 0.005)

let test_glm_falls_back_without_structure () =
  (* squared () has no GLM structure; the oracle must still work. *)
  let req = request ~n:50_000 ~eps:1. () in
  let theta = run (Oracles.glm ()) req in
  Alcotest.(check bool) "feasible fallback" true
    (Domain.contains ~tol:1e-6 req.Oracle.domain theta)

let test_for_loss_dispatch () =
  Alcotest.(check string) "strongly convex" "strongly_convex"
    (Oracles.for_loss
       (Losses.prox_quadratic ~sigma:1. ~target:(fun x -> x.Pmw_data.Point.features) ~dim:2 ()))
      .Oracle.name;
  Alcotest.(check string) "glm" "glm" (Oracles.for_loss (Losses.logistic ())).Oracle.name;
  Alcotest.(check string) "default" "noisy_gd" (Oracles.for_loss (Losses.squared ())).Oracle.name

let test_privacy_budget_affects_noise () =
  (* Tiny eps must hurt accuracy relative to huge eps (sanity of calibration
     direction). *)
  let low = mean_risk Oracles.output_perturbation (request ~n:20_000 ~eps:0.01 ()) in
  let high = mean_risk Oracles.output_perturbation (request ~n:20_000 ~eps:10. ()) in
  Alcotest.(check bool)
    (Printf.sprintf "more budget, less error: %.4f vs %.4f" high low)
    true (high < low)

(* --- fault-injection telemetry --- *)

module Telemetry = Pmw_telemetry.Telemetry
module Faulty = Pmw_erm.Faulty_oracle

let ring_telemetry () = Telemetry.create ~sink:(Telemetry.Sink.ring ()) ()

let marks_named tel name =
  List.filter
    (fun e -> e.Telemetry.kind = Telemetry.Mark && e.Telemetry.name = name)
    (Telemetry.events tel)

let str_field e name =
  match List.assoc_opt name e.Telemetry.fields with
  | Some (Telemetry.Str s) -> s
  | _ -> Alcotest.failf "mark %s: missing string field %S" e.Telemetry.name name

let float_field e name =
  match List.assoc_opt name e.Telemetry.fields with
  | Some (Telemetry.Float f) -> f
  | _ -> Alcotest.failf "mark %s: missing float field %S" e.Telemetry.name name

let test_every_fault_class_emits_event () =
  (* Each injected fault class must surface as a "fault.injected" mark whose
     "fault" field round-trips through fault_to_string. *)
  List.iter
    (fun fault ->
      let tel = ring_telemetry () in
      let faulty = Faulty.create ~telemetry:tel ~plan:(Faulty.Always fault) Oracles.exact in
      let req = request ~n:1_000 () in
      (match (Faulty.oracle faulty).Oracle.run req with
      | (_ : Vec.t) -> ()
      | exception Oracle.Timeout _ -> ());
      let marks = marks_named tel "fault.injected" in
      Alcotest.(check int)
        (Faulty.fault_to_string fault ^ ": one event")
        1 (List.length marks);
      let m = List.hd marks in
      Alcotest.(check string)
        (Faulty.fault_to_string fault ^ ": fault tag")
        (Faulty.fault_to_string fault) (str_field m "fault");
      Alcotest.(check int)
        (Faulty.fault_to_string fault ^ ": counter")
        1
        (Telemetry.counter tel "faults_injected");
      match fault with
      | Faulty.Misreport factor ->
          (* the event carries the inflated claim a ledger-aware caller debits *)
          Alcotest.(check (float 1e-12))
            "claimed eps"
            (req.Oracle.privacy.Params.eps *. factor)
            (float_field m "claimed_eps");
          Alcotest.(check bool) "claim surfaced" true (Faulty.claimed_spend faulty <> None)
      | _ -> ())
    [ Faulty.Nan_answer; Faulty.Inf_answer; Faulty.Divergent; Faulty.Timeout; Faulty.Misreport 3. ]

let test_chain_reconstructible_from_trace () =
  (* A retry/fallback run must be replayable from the trace alone: the
     oracle.attempt marks carry (oracle, try, ok) for every attempt, in
     order, ending with the success. *)
  let tel = ring_telemetry () in
  let bad = Faulty.create ~plan:(Faulty.Always Faulty.Nan_answer) Oracles.exact in
  let chain =
    Oracles.with_fallback ~telemetry:tel ~retries:1 [ Faulty.oracle bad; Oracles.exact ]
  in
  let theta = chain.Oracle.run (request ~n:1_000 ()) in
  Alcotest.(check bool) "chain answered" true (Array.for_all Float.is_finite theta);
  let attempts =
    List.map
      (fun m ->
        let ok =
          match List.assoc_opt "ok" m.Telemetry.fields with
          | Some (Telemetry.Bool b) -> b
          | _ -> Alcotest.fail "attempt without ok field"
        in
        let try_i =
          match List.assoc_opt "try" m.Telemetry.fields with
          | Some (Telemetry.Int i) -> i
          | _ -> Alcotest.fail "attempt without try field"
        in
        (str_field m "oracle", try_i, ok))
      (marks_named tel "oracle.attempt")
  in
  Alcotest.(check (list (triple string int bool)))
    "reconstructed chain"
    [ ("exact!faulty", 1, false); ("exact!faulty", 2, false); ("exact", 3, true) ]
    attempts;
  Alcotest.(check int) "oracle_attempts" 3 (Telemetry.counter tel "oracle_attempts");
  Alcotest.(check int) "oracle_retries" 2 (Telemetry.counter tel "oracle_retries")

let test_exhausted_chain_marks_trace () =
  let tel = ring_telemetry () in
  let bad = Faulty.create ~plan:(Faulty.Always Faulty.Divergent) Oracles.exact in
  let chain = Oracles.with_fallback ~telemetry:tel [ Faulty.oracle bad ] in
  (match chain.Oracle.run (request ~n:1_000 ()) with
  | (_ : Vec.t) -> Alcotest.fail "divergent chain must fail"
  | exception Oracle.Failed _ -> ());
  let marks = marks_named tel "oracle.exhausted" in
  Alcotest.(check int) "one exhausted mark" 1 (List.length marks);
  match List.assoc_opt "attempts" (List.hd marks).Telemetry.fields with
  | Some (Telemetry.Int 1) -> ()
  | _ -> Alcotest.fail "exhausted mark must carry the attempt count"

(* --- the fallback table: every (fault class x chain depth) cell ---

   One faulty head stage ([Always fault]) in front of [depth - 1] healthy
   fallbacks, driven through {!Oracles.with_fallback} with a real
   budget-debiting [authorize] hook. Per cell the table asserts BOTH the
   verdict (recovered answer vs exhausted chain — Misreport rows always
   succeed at attempt 1, their poison being the claimed spend, not the
   answer) and the ledger debit: every attempt is paid for before it runs,
   and a failed attempt stays debited. *)

module Budget = Pmw_core.Budget

type cell_expectation = {
  expect_answer : bool;
  expect_attempts : int;  (** = ledger debits, at one [(ε₀, δ₀)] each *)
}

let expected_cell ~fault ~depth =
  match fault with
  | Faulty.Misreport _ -> { expect_answer = true; expect_attempts = 1 }
  | Faulty.Nan_answer | Faulty.Inf_answer | Faulty.Divergent | Faulty.Timeout ->
      if depth >= 2 then { expect_answer = true; expect_attempts = 2 }
      else { expect_answer = false; expect_attempts = 1 }

let test_fallback_fault_table () =
  let faults =
    [ Faulty.Nan_answer; Faulty.Inf_answer; Faulty.Divergent; Faulty.Timeout; Faulty.Misreport 4. ]
  in
  List.iter
    (fun fault ->
      List.iter
        (fun depth ->
          let cell = Printf.sprintf "[%s x depth %d]" (Faulty.fault_to_string fault) depth in
          let req = request ~n:2_000 () in
          let budget = Budget.create (Params.create ~eps:10. ~delta:1e-4) in
          let authorize r =
            Result.map (fun (_ : Params.t) -> ())
              (Budget.request ~mechanism:"oracle-attempt" budget r.Oracle.privacy)
          in
          let attempts = ref [] in
          let faulty = Faulty.create ~plan:(Faulty.Always fault) Oracles.exact in
          let chain =
            Faulty.oracle faulty
            :: List.init (depth - 1) (fun _ -> Oracles.output_perturbation)
          in
          let oracle =
            Oracles.with_fallback ~authorize
              ~on_attempt:(fun a -> attempts := a :: !attempts)
              chain
          in
          let expected = expected_cell ~fault ~depth in
          (match oracle.Oracle.run req with
          | theta ->
              Alcotest.(check bool) (cell ^ " expected an exhausted chain") true
                expected.expect_answer;
              (match Oracles.finite_in_domain req theta with
              | Ok () -> ()
              | Error why -> Alcotest.failf "%s recovered answer invalid: %s" cell why)
          | exception Oracle.Failed _ ->
              Alcotest.(check bool) (cell ^ " expected a recovered answer") false
                expected.expect_answer);
          Alcotest.(check int) (cell ^ " attempts") expected.expect_attempts
            (List.length !attempts);
          (* every attempt's own record carries the per-call price *)
          List.iter
            (fun (a : Oracles.attempt) ->
              Alcotest.(check (float 1e-12)) (cell ^ " attempt spend eps")
                req.Oracle.privacy.Params.eps a.Oracles.attempt_spend.Params.eps)
            !attempts;
          (* and the ledger was debited once per attempt, failed or not *)
          Alcotest.(check int) (cell ^ " ledger debits") expected.expect_attempts
            (List.length (Budget.history budget));
          let spent = Budget.spent budget in
          Alcotest.(check (float 1e-9)) (cell ^ " eps debited")
            (float_of_int expected.expect_attempts *. req.Oracle.privacy.Params.eps)
            spent.Params.eps;
          Alcotest.(check (float 1e-15)) (cell ^ " delta debited")
            (float_of_int expected.expect_attempts *. req.Oracle.privacy.Params.delta)
            spent.Params.delta;
          match fault with
          | Faulty.Misreport _ ->
              Alcotest.(check bool) (cell ^ " misreport claim surfaced") true
                (Faulty.claimed_spend faulty <> None)
          | _ -> ())
        [ 1; 2; 3 ])
    faults

(* The ledger saying no mid-chain: the first attempt is funded and fails,
   the pot cannot fund the fallback, and the chain must abort with
   [Budget_denied] — leaving exactly the one funded attempt debited. *)
let test_fallback_budget_denied_mid_chain () =
  let req = request ~n:2_000 () in
  let budget = Budget.create (Params.create ~eps:1.5 ~delta:1e-4) in
  let authorize r =
    Result.map (fun (_ : Params.t) -> ())
      (Budget.request ~mechanism:"oracle-attempt" budget r.Oracle.privacy)
  in
  let faulty = Faulty.create ~plan:(Faulty.Always Faulty.Nan_answer) Oracles.exact in
  let oracle =
    Oracles.with_fallback ~authorize [ Faulty.oracle faulty; Oracles.output_perturbation ]
  in
  (match oracle.Oracle.run req with
  | (_ : Vec.t) -> Alcotest.fail "chain must abort when the ledger denies the fallback"
  | exception Oracle.Budget_denied _ -> ());
  Alcotest.(check int) "only the funded attempt is debited" 1
    (List.length (Budget.history budget));
  Alcotest.(check (float 1e-9)) "its eps stays spent" req.Oracle.privacy.Params.eps
    (Budget.spent budget).Params.eps

let qcheck_outputs_always_feasible =
  QCheck.Test.make ~name:"oracle outputs always in domain" ~count:20
    QCheck.(pair (int_range 100 2000) (float_range 0.05 2.))
    (fun (n, eps) ->
      let req = request ~n ~eps () in
      let theta = run (Oracles.noisy_gd ()) req in
      Domain.contains ~tol:1e-6 req.Oracle.domain theta)

let () =
  Alcotest.run "pmw_erm"
    [
      ( "oracles",
        [
          Alcotest.test_case "exact near-zero risk" `Quick test_exact_oracle_near_zero_risk;
          Alcotest.test_case "exact finds signal" `Quick test_exact_oracle_finds_planted_signal;
          Alcotest.test_case "feasible outputs" `Quick test_outputs_feasible;
          Alcotest.test_case "noisy_gd useful" `Quick test_noisy_gd_useful_at_scale;
          Alcotest.test_case "noisy_gd improves with n" `Quick test_noisy_gd_improves_with_n;
          Alcotest.test_case "output perturbation" `Quick test_output_perturbation_useful;
          Alcotest.test_case "strongly convex" `Quick test_strongly_convex_oracle;
          Alcotest.test_case "laplace output" `Quick test_laplace_output_oracle;
          Alcotest.test_case "glm useful" `Quick test_glm_oracle_useful;
          Alcotest.test_case "glm dimension independence" `Slow test_glm_dimension_independence;
          Alcotest.test_case "glm fallback" `Quick test_glm_falls_back_without_structure;
          Alcotest.test_case "dispatch" `Quick test_for_loss_dispatch;
          Alcotest.test_case "budget direction" `Quick test_privacy_budget_affects_noise;
        ] );
      ( "fault telemetry",
        [
          Alcotest.test_case "every fault class emits event" `Quick
            test_every_fault_class_emits_event;
          Alcotest.test_case "chain reconstructible from trace" `Quick
            test_chain_reconstructible_from_trace;
          Alcotest.test_case "exhausted chain marked" `Quick test_exhausted_chain_marks_trace;
        ] );
      ( "fallback table",
        [
          Alcotest.test_case "every (fault x depth) cell" `Quick test_fallback_fault_table;
          Alcotest.test_case "budget denied mid-chain" `Quick
            test_fallback_budget_denied_mid_chain;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ qcheck_outputs_always_feasible ]);
    ]
