(* Tests for the live metrics plane (lib/telemetry/metrics.ml) and the
   fleet-level observability invariants that ride on it:

   - the Metrics registry itself: disabled handles are inert, histogram
     quantiles respect the log2-bucket resolution, rolling rates follow an
     injected clock, and cumulative ledger feeds are idempotent under
     replay (the monotone compare-and-set);
   - the parallel-composition accounting property, as a qcheck property
     over random query/kill schedules: the fleet spend the router reports
     is always covered by the coordinate-wise max of the per-shard journal
     cumulatives — a shard's journal can only say more, never less;
   - supervisor counter delta-mirroring: after a kill-shard soak the
     telemetry counters `fleet_shard_restarts` / `shardI_restarts` /
     `fleet_quarantined` agree with the supervisor's own tallies and the
     journal-driven boot count (Shard.incarnation), with heartbeats
     running concurrently — the regression that used to double-count;
   - monotone timestamps across a `session.restart` mark: a resumed
     trace stream reads as one session, with round numbering continuing
     where the killed process stopped. *)

module Universe = Pmw_data.Universe
module Dataset = Pmw_data.Dataset
module Synth = Pmw_data.Synth
module Domain_ = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Session = Pmw_session.Session
module Checkpoint = Pmw_session.Checkpoint
module Pool = Pmw_parallel.Pool
module Protocol = Pmw_server.Protocol
module Shard = Pmw_server.Shard
module Router = Pmw_server.Router
module Supervisor = Pmw_server.Supervisor
module Journal = Pmw_server.Journal
module Telemetry = Pmw_telemetry.Telemetry
module Metrics = Pmw_telemetry.Metrics
module Rng = Pmw_rng.Rng

(* --- Metrics registry unit tests --- *)

let test_disabled_is_inert () =
  let m = Metrics.disabled () in
  Alcotest.(check bool) "disabled" false (Metrics.is_enabled m);
  let h = Metrics.histogram m "x" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  let s = Metrics.hist_snapshot h in
  Alcotest.(check int) "no samples recorded" 0 s.Metrics.hs_count;
  let r = Metrics.rate m "y" in
  Metrics.tick r;
  Alcotest.(check int) "no ticks recorded" 0 (Metrics.rate_snapshot r).Metrics.rs_total;
  let l = Metrics.ledger m "fleet" in
  Metrics.ledger_cum l ~eps:0.3 ~delta:1e-7 ~debits:2;
  Alcotest.(check (float 0.)) "no spend recorded" 0.
    (Metrics.ledger_snapshot l).Metrics.ls_eps;
  Alcotest.(check bool) "snapshot says disabled" true
    (String.length (Metrics.to_json m) > 0
    && String.sub (Metrics.to_json m) 0 17 = "{\"enabled\":false,")

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  (* 100 samples at 1 ms, 10 at 100 ms: p50 ~ 1 ms, p99+ ~ 100 ms, within
     the factor-of-2 bucket resolution documented in the interface *)
  for _ = 1 to 100 do
    Metrics.observe h 0.001
  done;
  for _ = 1 to 10 do
    Metrics.observe h 0.1
  done;
  let s = Metrics.hist_snapshot h in
  Alcotest.(check int) "count" 110 s.Metrics.hs_count;
  Alcotest.(check (float 1e-3)) "sum" 1.1 s.Metrics.hs_sum;
  Alcotest.(check (float 1e-9)) "max is exact" 0.1 s.Metrics.hs_max;
  let within_2x est truth = est >= truth /. 2. && est <= truth *. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.4g ~ 1ms" s.Metrics.hs_p50)
    true
    (within_2x s.Metrics.hs_p50 0.001);
  Alcotest.(check bool)
    (Printf.sprintf "p99 %.4g ~ 100ms" s.Metrics.hs_p99)
    true
    (within_2x s.Metrics.hs_p99 0.1);
  Alcotest.(check bool) "quantiles ordered" true
    (s.Metrics.hs_p50 <= s.Metrics.hs_p90
    && s.Metrics.hs_p90 <= s.Metrics.hs_p99
    && s.Metrics.hs_p99 <= s.Metrics.hs_max)

let test_rate_rolling_window () =
  let now = ref 1000. in
  let m = Metrics.create ~clock:(fun () -> !now) () in
  let r = Metrics.rate m "req" in
  (* one tick per second for 5 s, then read 5 s later: 5 events over the
     trailing 10 s window *)
  for i = 0 to 4 do
    now := 1000. +. float_of_int i;
    Metrics.tick r
  done;
  now := 1010.;
  let s = Metrics.rate_snapshot ~window_s:10 r in
  Alcotest.(check int) "total is exact" 5 s.Metrics.rs_total;
  Alcotest.(check bool)
    (Printf.sprintf "windowed rate %.3f ~ 0.5/s" s.Metrics.rs_per_s)
    true
    (s.Metrics.rs_per_s > 0.3 && s.Metrics.rs_per_s < 0.7);
  (* far outside the ring, the window is empty but the total survives *)
  now := 1200.;
  let s = Metrics.rate_snapshot ~window_s:10 r in
  Alcotest.(check int) "total still exact" 5 s.Metrics.rs_total;
  Alcotest.(check (float 0.)) "stale window is zero" 0. s.Metrics.rs_per_s

let test_ledger_replay_is_idempotent () =
  let now = ref 0. in
  let m = Metrics.create ~clock:(fun () -> !now) () in
  let l = Metrics.ledger m "shard0" in
  Metrics.set_ledger_budget l ~eps:1.0 ~delta:1e-6;
  Metrics.ledger_cum l ~eps:0.5 ~delta:5e-7 ~debits:3;
  (* a replayed (stale) cumulative must not regress the observed spend *)
  Metrics.ledger_cum l ~eps:0.2 ~delta:2e-7 ~debits:1;
  let s = Metrics.ledger_snapshot l in
  Alcotest.(check (float 1e-9)) "eps held at max" 0.5 s.Metrics.ls_eps;
  Alcotest.(check int) "debits held at max" 3 s.Metrics.ls_debits;
  Metrics.ledger_cum l ~eps:0.7 ~delta:7e-7 ~debits:4;
  let s = Metrics.ledger_snapshot l in
  Alcotest.(check (float 1e-9)) "fresh cumulative advances" 0.7 s.Metrics.ls_eps;
  Alcotest.(check (float 1e-9)) "budget recorded" 1.0 s.Metrics.ls_eps_budget;
  (* 0.3 eps left at 0.175 mean eps/debit: under two rounds to exhaustion *)
  Alcotest.(check bool)
    (Printf.sprintf "rounds_left %.3f finite and sane" s.Metrics.ls_rounds_left)
    true
    (Float.is_finite s.Metrics.ls_rounds_left
    && s.Metrics.ls_rounds_left > 1.0
    && s.Metrics.ls_rounds_left < 3.0)

let test_renderers_parse () =
  let m = Metrics.create () in
  Metrics.observe (Metrics.histogram m "server.request_s") 0.01;
  Metrics.tick (Metrics.rate m "fleet_answered");
  Metrics.set_gauge (Metrics.gauge m "net.connections") 2.;
  let l = Metrics.ledger m "fleet" in
  Metrics.set_ledger_budget l ~eps:1. ~delta:1e-6;
  Metrics.ledger_cum l ~eps:0.25 ~delta:1e-7 ~debits:1;
  let json = Metrics.to_json m in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "json contains %s" needle) true (contains json needle))
    [
      "\"enabled\":true";
      "\"server.request_s\"";
      "\"fleet_answered\"";
      "\"burn_eps_per_s\"";
      "\"rounds_left\"";
    ];
  (* every non-comment exposition line must be "name[{labels}] value" with
     a parseable value — the same check the CI metrics-smoke job runs *)
  let lines = String.split_on_char '\n' (Metrics.to_prometheus m) in
  let samples =
    List.filter (fun ln -> ln <> "" && ln.[0] <> '#') lines
  in
  Alcotest.(check bool) "exposition is non-trivial" true (List.length samples >= 6);
  List.iter
    (fun ln ->
      match String.rindex_opt ln ' ' with
      | None -> Alcotest.failf "malformed exposition line: %s" ln
      | Some i ->
          let name = String.sub ln 0 i in
          let value = String.sub ln (i + 1) (String.length ln - i - 1) in
          Alcotest.(check bool)
            (Printf.sprintf "metric name prefixed: %s" name)
            true
            (String.length name > 4 && String.sub name 0 4 = "pmw_");
          if value <> "+Inf" && value <> "-Inf" && value <> "NaN" then
            match float_of_string_opt value with
            | Some _ -> ()
            | None -> Alcotest.failf "unparseable sample value %S in %S" value ln)
    samples

(* --- fleet fixture (mirrors test_router.ml, plus journals) --- *)

let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 ()
let domain = Domain_.unit_ball ~dim:2
let privacy = Params.create ~eps:1. ~delta:1e-6

let dataset =
  Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000
    (Rng.create ~seed:7 ())

let config () =
  Config.practical ~universe ~privacy ~alpha:0.02 ~beta:0.05 ~scale:2. ~k:14 ~t_max:8
    ~solver_iters:120 ()

let panel =
  [
    ("sq", Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ());
    ("huber", Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ());
  ]

let resolve name = List.assoc_opt name panel

let temp_journal_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmw-metrics-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o700;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let mk_fleet ?metrics ~dir ~shards () =
  let blocks = Shard.partition dataset ~by:Shard.Block ~shards in
  Array.of_list
    (List.mapi
       (fun i block ->
         Shard.create ~id:i
           ~weight:(float_of_int (Dataset.size block) /. float_of_int (Dataset.size dataset))
           ~journal_path:(Filename.concat dir (Printf.sprintf "j.shard%d" i))
           ?metrics
           ~make_session:(fun tel ->
             let pool = Pool.create ~domains:1 () in
             Session.create ~pool ~telemetry:tel
               ~label:(Printf.sprintf "shard%d" i)
               ~config:(config ()) ~dataset:block
               ~rng:(Rng.create ~seed:(100 + i) ())
               ())
           ~resolve ())
       blocks)

let start_fleet fleet =
  Array.iter
    (fun s ->
      match Shard.start s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "shard %d failed to start: %s" (Shard.id s) m)
    fleet

let req ~id ~query () =
  {
    Protocol.req_id = id;
    req_analyst = "a";
    req_query = query;
    req_rid = None;
    req_shards = None;
    req_trace = None;
    req_pspan = None;
    req_rows = None;
  }

let wait_for ?(seconds = 8.) what pred =
  let deadline = Unix.gettimeofday () +. seconds in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let journal_cum path =
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Journal.replay_string raw with
  | Ok rv -> rv.Journal.rv_cum
  | Error e -> Alcotest.failf "journal %s unreadable: %s" path e

(* --- the coordinate-wise-max property --- *)

(* One schedule: which query each step submits, and the step index before
   which shard (step mod shards) is killed and restarted. The property is
   the soundness direction of parallel composition: whatever the schedule,
   the fleet spend the router reports never exceeds the coordinate-wise
   max of the per-shard journal cumulatives (journals may legally be
   ahead — e.g. sparse-vector debits behind a refusal — but never
   behind). *)
let fleet_spend_covered_by_journals (steps, kill_at) =
  let shards = 2 in
  let dir = temp_journal_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let fleet = mk_fleet ~dir ~shards () in
  start_fleet fleet;
  let router = Router.create ~shards:fleet () in
  Fun.protect ~finally:(fun () -> Array.iter Shard.stop fleet) @@ fun () ->
  List.iteri
    (fun i use_huber ->
      if i = kill_at then begin
        let victim = fleet.(i mod shards) in
        ignore (Shard.kill victim);
        match Shard.start victim with
        | Ok () -> ()
        | Error m -> Alcotest.failf "restart failed: %s" m
      end;
      ignore (Router.submit router (req ~id:i ~query:(if use_huber then "huber" else "sq") ())))
    steps;
  let reported = Router.fleet_spent router in
  (* quiesce the journals before replaying them *)
  Array.iter Shard.stop fleet;
  let cums =
    Array.to_list fleet
    |> List.map (fun s ->
           match Shard.journal_path s with
           | Some p -> journal_cum p
           | None -> Alcotest.fail "shard has no journal")
  in
  let cum_eps = List.fold_left (fun a (e, _) -> Float.max a e) 0. cums in
  let cum_delta = List.fold_left (fun a (_, d) -> Float.max a d) 0. cums in
  if reported.Params.eps > cum_eps +. 1e-9 then
    QCheck.Test.fail_reportf
      "reported fleet eps %.9g exceeds journal coordinate-wise max %.9g"
      reported.Params.eps cum_eps;
  if reported.Params.delta > cum_delta +. 1e-12 then
    QCheck.Test.fail_reportf
      "reported fleet delta %.3e exceeds journal coordinate-wise max %.3e"
      reported.Params.delta cum_delta;
  true

let prop_fleet_spend =
  QCheck.Test.make ~count:4 ~name:"fleet spend <= coordinate-wise max of journal cums"
    QCheck.(pair (list_of_size (Gen.int_range 2 6) bool) (int_bound 3))
    fleet_spend_covered_by_journals

(* --- supervisor counter delta-mirroring (the regression) --- *)

let test_supervisor_counters_mirror_restarts () =
  let dir = temp_journal_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let metrics = Metrics.create () in
  let fleet = mk_fleet ~metrics ~dir ~shards:2 () in
  start_fleet fleet;
  let tel = Telemetry.create ~sink:(Telemetry.Sink.ring ()) () in
  (* a fast heartbeat so mirror_own runs many times between incidents: the
     old ad-hoc increments would double-count under exactly this overlap *)
  let cfg = { Supervisor.default_config with su_heartbeat_every_s = 0.02; su_poll_s = 0.005 } in
  let supervisor = Supervisor.start ~config:cfg ~telemetry:tel ~metrics ~shards:fleet () in
  Fun.protect
    ~finally:(fun () ->
      Supervisor.stop supervisor;
      Array.iter Shard.stop fleet)
    (fun () ->
      for round = 1 to 2 do
        ignore (Shard.kill fleet.(1));
        wait_for
          (Printf.sprintf "supervised restart %d" round)
          (fun () -> Shard.state fleet.(1) = Shard.Running && Supervisor.restarts supervisor = round)
      done;
      (* let several heartbeats mirror on top of the incident-path mirrors *)
      Thread.delay 0.1;
      let restarts = Supervisor.restarts supervisor in
      Alcotest.(check int) "supervisor tally" 2 restarts;
      Alcotest.(check int) "fleet_shard_restarts mirrors the tally" restarts
        (Telemetry.counter tel "fleet_shard_restarts");
      Alcotest.(check int) "shard1_restarts mirrors the tally" restarts
        (Telemetry.counter tel "shard1_restarts");
      Alcotest.(check int) "shard0 never restarted" 0 (Telemetry.counter tel "shard0_restarts");
      Alcotest.(check int) "nothing quarantined" 0 (Telemetry.counter tel "fleet_quarantined");
      (* journal-driven boot count: every start replays the shard journal,
         so incarnation - 1 is the journal-derived restart count *)
      Alcotest.(check int) "journal-derived restarts agree" restarts
        (Shard.incarnation fleet.(1) - 1);
      Alcotest.(check int) "live metrics rate agrees" restarts
        (Metrics.rate_snapshot (Metrics.rate metrics "fleet_restarts")).Metrics.rs_total)

let test_supervisor_counters_mirror_quarantine () =
  let dir = temp_journal_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let fleet = mk_fleet ~dir ~shards:2 () in
  start_fleet fleet;
  let tel = Telemetry.create ~sink:(Telemetry.Sink.ring ()) () in
  let cfg =
    {
      Supervisor.default_config with
      su_backoff_base_s = 0.005;
      su_backoff_max_s = 0.01;
      su_quarantine_after = 2;
      su_heartbeat_every_s = 0.02;
    }
  in
  let supervisor = Supervisor.start ~config:cfg ~telemetry:tel ~shards:fleet () in
  Fun.protect
    ~finally:(fun () ->
      Supervisor.stop supervisor;
      Array.iter Shard.stop fleet)
    (fun () ->
      wait_for "quarantine verdict" ~seconds:10. (fun () ->
          (if Shard.state fleet.(0) = Shard.Running then ignore (Shard.kill fleet.(0)));
          Shard.state fleet.(0) = Shard.Quarantined);
      Thread.delay 0.1;
      Alcotest.(check int) "fleet_quarantined mirrors the tally"
        (Supervisor.quarantines supervisor)
        (Telemetry.counter tel "fleet_quarantined");
      Alcotest.(check int) "shard0_quarantined set" 1 (Telemetry.counter tel "shard0_quarantined");
      Alcotest.(check bool) "restart strikes were counted" true
        (Telemetry.counter tel "fleet_shard_restarts" >= 1))

(* --- monotone timestamps across session.restart --- *)

let queries k =
  List.init k (fun i ->
      if i mod 2 = 0 then Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ()
      else Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ())

let test_restart_mark_monotone () =
  let tel1 = Telemetry.create ~sink:(Telemetry.Sink.ring ()) () in
  let s1 = Session.create ~telemetry:tel1 ~config:(config ()) ~dataset
      ~rng:(Rng.create ~seed:42 ()) () in
  List.iter (fun q -> ignore (Session.answer s1 q)) (queries 4);
  let blob = Checkpoint.to_string (Session.checkpoint s1) in
  let ckpt = match Checkpoint.of_string blob with Ok c -> c | Error e -> Alcotest.fail e in
  let tel2 = Telemetry.create ~sink:(Telemetry.Sink.ring ()) () in
  let s2 =
    match
      Session.resume ~telemetry:tel2 ~config:(config ()) ~dataset
        ~rng:(Rng.create ~seed:999 ()) ckpt
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  List.iter (fun q -> ignore (Session.answer s2 q)) (queries 3);
  let resumed = Telemetry.events tel2 in
  let restart_marks =
    List.filter
      (fun e -> e.Telemetry.kind = Telemetry.Mark && e.Telemetry.name = "session.restart")
      resumed
  in
  Alcotest.(check int) "exactly one restart mark" 1 (List.length restart_marks);
  let mark = List.hd restart_marks in
  (* round numbering continues where the killed process stopped *)
  Alcotest.(check int) "restart mark carries the resumed round" 4 mark.Telemetry.round;
  let last_round_before =
    List.fold_left (fun acc e -> max acc e.Telemetry.round) (-1) (Telemetry.events tel1)
  in
  Alcotest.(check int) "first stream ended at the checkpointed round" 4 last_round_before;
  (* timestamps and rounds are non-decreasing across the restart mark *)
  ignore
    (List.fold_left
       (fun (prev_ts, prev_round) e ->
         Alcotest.(check bool)
           (Printf.sprintf "ts monotone at %s" e.Telemetry.name)
           true
           (e.Telemetry.ts >= prev_ts);
         if e.Telemetry.round >= 0 then
           Alcotest.(check bool)
             (Printf.sprintf "round monotone at %s" e.Telemetry.name)
             true
             (e.Telemetry.round >= prev_round);
         (e.Telemetry.ts, max prev_round e.Telemetry.round))
       (0., -1) resumed);
  let max_round_after =
    List.fold_left (fun acc e -> max acc e.Telemetry.round) (-1) resumed
  in
  Alcotest.(check int) "resumed stream advanced past the restart round" 7 max_round_after

let () =
  Random.self_init ();
  Alcotest.run "pmw_metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled handles are inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "rolling rate window" `Quick test_rate_rolling_window;
          Alcotest.test_case "ledger replay idempotent" `Quick test_ledger_replay_is_idempotent;
          Alcotest.test_case "renderers parse" `Quick test_renderers_parse;
        ] );
      ( "fleet-accounting",
        [ QCheck_alcotest.to_alcotest prop_fleet_spend ] );
      ( "supervisor-mirroring",
        [
          Alcotest.test_case "restart counters mirror the tally" `Quick
            test_supervisor_counters_mirror_restarts;
          Alcotest.test_case "quarantine counters mirror the tally" `Quick
            test_supervisor_counters_mirror_quarantine;
        ] );
      ( "restart-trace",
        [ Alcotest.test_case "monotone across session.restart" `Quick test_restart_mark_monotone ] );
    ]
