(* Tests for the write-ahead privacy journal (lib/server/journal.ml): the
   recovery contract that makes crash-safe serving work. Replay of any
   byte-truncation of a valid journal succeeds (a crash can only tear the
   tail), replay of any line-prefix is idempotent under [reconcile]
   (debits carry cumulative totals), a torn final record is dropped
   without losing earlier records, and corruption BEFORE the tail is a
   hard error — silently dropping recorded answers would break the dedup
   byte-identity contract. *)

module Journal = Pmw_server.Journal
module Budget = Pmw_core.Budget
module Params = Pmw_dp.Params

let journal_string records =
  String.concat "" (List.map (fun r -> Journal.record_to_string r ^ "\n") records)

let replay_ok s =
  match Journal.replay_string s with
  | Ok rv -> rv
  | Error e -> Alcotest.failf "replay failed: %s" e

(* --- generators --- *)

let ident = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

let gen_records =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let rec go i cum_e cum_d acc =
      if i >= n then return (List.rev acc)
      else
        let* kind = int_bound 2 in
        match kind with
        | 0 ->
            let* de = float_bound_inclusive 0.3 and* dd = float_bound_inclusive 1e-7 in
            let cum_e = cum_e +. de and cum_d = cum_d +. dd in
            go (i + 1) cum_e cum_d
              (Journal.Debit
                 {
                   jd_mechanism = "serve";
                   jd_eps = de;
                   jd_delta = dd;
                   jd_cum_eps = cum_e;
                   jd_cum_delta = cum_d;
                 }
              :: acc)
        | 1 ->
            let* seq = int_bound 100 and* analyst = ident in
            let* rid = option ident and* line = ident in
            go (i + 1) cum_e cum_d
              (Journal.Answer { ja_seq = seq; ja_analyst = analyst; ja_rid = rid; ja_line = line }
              :: acc)
        | _ ->
            let* name = ident in
            go (i + 1) cum_e cum_d (Journal.Mark name :: acc)
    in
    go 0 0. 0. [])

let print_records rs = journal_string rs

(* --- record round-trip --- *)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"records survive the wire format" ~count:300
    (QCheck.make ~print:print_records gen_records)
    (fun records ->
      let rv = replay_ok (journal_string records) in
      rv.Journal.rv_records = records && (not rv.Journal.rv_torn)
      && rv.Journal.rv_dropped_bytes = 0)

(* --- prefix replay is idempotent under reconcile ---

   Debits carry cumulative totals, so applying replay(first j lines) and
   then replay(all lines) to the same ledger must land exactly where
   applying replay(all lines) once would: the second reconcile only debits
   the difference. *)

let qcheck_prefix_idempotent =
  QCheck.Test.make ~name:"replay(prefix) then replay(full) = replay(full)" ~count:200
    (QCheck.make
       ~print:(fun (rs, j) -> Printf.sprintf "prefix %d of:\n%s" j (print_records rs))
       QCheck.Gen.(
         let* rs = gen_records in
         let* j = int_bound (List.length rs) in
         return (rs, j)))
    (fun (records, j) ->
      let prefix = List.filteri (fun i _ -> i < j) records in
      let rv_prefix = replay_ok (journal_string prefix) in
      let rv_full = replay_ok (journal_string records) in
      let budget = Budget.create (Params.create ~eps:10. ~delta:1e-4) in
      let e1, d1 = Journal.reconcile rv_prefix ~budget in
      let e2, d2 = Journal.reconcile rv_full ~budget in
      let fe, fd = rv_full.Journal.rv_cum in
      let spent = Budget.spent budget in
      let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs b) in
      (* the two steps sum to exactly one full application... *)
      close (e1 +. e2) fe && close (d1 +. d2) fd
      (* ...and the ledger agrees *)
      && close spent.Params.eps fe
      && close spent.Params.delta fd
      &&
      (* a third application debits nothing *)
      let e3, d3 = Journal.reconcile rv_full ~budget in
      e3 = 0. && d3 = 0.)

(* --- torn tails: any byte-truncation of a valid journal replays --- *)

let qcheck_truncation =
  QCheck.Test.make ~name:"any byte-truncation replays (tail dropped, prefix kept)" ~count:300
    (QCheck.make
       ~print:(fun (rs, cut) -> Printf.sprintf "cut at %d of:\n%s" cut (print_records rs))
       QCheck.Gen.(
         let* rs = gen_records in
         let s = journal_string rs in
         let* cut = int_bound (String.length s) in
         return (rs, cut)))
    (fun (records, cut) ->
      let s = journal_string records in
      let truncated = String.sub s 0 cut in
      let rv = replay_ok truncated in
      (* the recovered records are exactly the complete lines left *)
      let complete_lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 truncated in
      let is_prefix =
        List.length rv.Journal.rv_records <= List.length records
        && List.for_all2
             (fun a b -> a = b)
             rv.Journal.rv_records
             (List.filteri (fun i _ -> i < List.length rv.Journal.rv_records) records)
      in
      is_prefix
      && List.length rv.Journal.rv_records = complete_lines
      && (rv.Journal.rv_torn = (rv.Journal.rv_dropped_bytes > 0)))

let test_torn_final_record () =
  let records =
    [
      Journal.Mark "start";
      Journal.Debit
        { jd_mechanism = "serve"; jd_eps = 0.1; jd_delta = 0.; jd_cum_eps = 0.1; jd_cum_delta = 0. };
      Journal.Answer { ja_seq = 0; ja_analyst = "a"; ja_rid = Some "r0"; ja_line = "x" };
    ]
  in
  let s = journal_string records in
  (* rip 3 bytes out of the final record (its trailing newline included) *)
  let torn = String.sub s 0 (String.length s - 3) in
  let rv = replay_ok torn in
  Alcotest.(check bool) "torn tail detected" true rv.Journal.rv_torn;
  Alcotest.(check int) "earlier records all kept" 2 (List.length rv.Journal.rv_records);
  Alcotest.(check (pair (float 0.) (float 0.))) "cum comes from the surviving debit" (0.1, 0.)
    rv.Journal.rv_cum

(* A corrupted-but-parseable final line is dropped like any torn tail, but
   its record kind is surfaced so operators can tell tail corruption that
   ate a meaningful record (an answer, a debit) from a routine torn
   write. A payload torn mid-JSON stays unclassified. *)
let test_tail_kind_reported () =
  let records =
    [
      Journal.Mark "start";
      Journal.Answer { ja_seq = 0; ja_analyst = "a"; ja_rid = Some "r0"; ja_line = "x" };
    ]
  in
  let s = journal_string records in
  (* corrupt the final line's checksum field, leaving its payload intact *)
  let b = Bytes.of_string s in
  let last_start = String.rindex_from s (String.length s - 2) '\n' + 1 in
  Bytes.set b last_start (if Bytes.get b last_start = '0' then '1' else '0');
  let rv = replay_ok (Bytes.to_string b) in
  Alcotest.(check bool) "torn tail detected" true rv.Journal.rv_torn;
  Alcotest.(check int) "prefix kept" 1 (List.length rv.Journal.rv_records);
  Alcotest.(check (option string)) "dropped tail's kind surfaced" (Some "answer")
    rv.Journal.rv_tail_kind;
  (* truncation mid-payload: unparseable fragment, no kind *)
  let rv2 = replay_ok (String.sub s 0 (String.length s - 4)) in
  Alcotest.(check bool) "truncated tail detected" true rv2.Journal.rv_torn;
  Alcotest.(check (option string)) "unparseable tail has no kind" None rv2.Journal.rv_tail_kind

(* --- corruption before the tail is a hard error --- *)

let qcheck_midfile_corruption =
  QCheck.Test.make ~name:"a flipped byte before the tail is a hard error" ~count:200
    (QCheck.make
       ~print:(fun (rs, pos, bits) ->
         Printf.sprintf "flip byte %d with %02x in:\n%s" pos bits (print_records rs))
       QCheck.Gen.(
         let* rs = gen_records in
         let* extra = ident in
         let rs = rs @ [ Journal.Mark extra ] in
         (* flip inside the FIRST line, never its newline *)
         let first_len = String.length (Journal.record_to_string (List.hd rs)) in
         let* pos = int_bound (first_len - 1) and* bits = int_range 1 255 in
         return (rs, pos, bits)))
    (fun (records, pos, bits) ->
      let s = Bytes.of_string (journal_string records) in
      Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor bits land 0xff));
      match Journal.replay_string (Bytes.to_string s) with
      | Error why ->
          (* the error names where it happened *)
          let has_midfile =
            let re = "mid-file" in
            let n = String.length why and m = String.length re in
            let rec find i = i + m <= n && (String.sub why i m = re || find (i + 1)) in
            find 0
          in
          has_midfile
      | Ok _ -> QCheck.Test.fail_reportf "corrupt journal replayed as valid")

(* --- open_journal truncates the torn tail off the file --- *)

let test_open_truncates_torn_tail () =
  let path = Filename.temp_file "pmw_journal_test" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let good =
        [
          Journal.Mark "start";
          Journal.Debit
            {
              jd_mechanism = "serve";
              jd_eps = 0.2;
              jd_delta = 1e-9;
              jd_cum_eps = 0.2;
              jd_cum_delta = 1e-9;
            };
        ]
      in
      let clean = journal_string good in
      let oc = open_out_bin path in
      output_string oc clean;
      output_string oc "deadbeef {\"kind\":\"debit\",\"mech";
      close_out oc;
      (* first open: torn tail detected, dropped, and truncated off disk *)
      (match Journal.open_journal ~path with
      | Error e -> Alcotest.failf "open failed: %s" e
      | Ok (j, rv) ->
          Alcotest.(check bool) "torn detected" true rv.Journal.rv_torn;
          Alcotest.(check int) "both clean records recovered" 2
            (List.length rv.Journal.rv_records);
          (* the handle still appends correctly after the truncation *)
          Journal.append j (Journal.Mark "after");
          Journal.sync j;
          Journal.close j;
          Journal.close j (* idempotent *));
      (* second open: the file is clean and the append landed after the
         recovered prefix *)
      match Journal.open_journal ~path with
      | Error e -> Alcotest.failf "re-open failed: %s" e
      | Ok (j, rv) ->
          Journal.close j;
          Alcotest.(check bool) "no torn tail on re-open" false rv.Journal.rv_torn;
          Alcotest.(check int) "three records now" 3 (List.length rv.Journal.rv_records);
          match List.rev rv.Journal.rv_records with
          | Journal.Mark "after" :: _ -> ()
          | _ -> Alcotest.fail "appended record not last")

let () =
  Alcotest.run "pmw_journal"
    [
      ( "replay",
        [
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x3a1 |]) qcheck_roundtrip;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x3a2 |])
            qcheck_prefix_idempotent;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x3a3 |]) qcheck_truncation;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x3a4 |])
            qcheck_midfile_corruption;
          Alcotest.test_case "torn final record dropped, prefix kept" `Quick
            test_torn_final_record;
          Alcotest.test_case "dropped tail's record kind is reported" `Quick
            test_tail_kind_reported;
        ] );
      ( "file handle",
        [
          Alcotest.test_case "open truncates the torn tail off disk" `Quick
            test_open_truncates_torn_tail;
        ] );
    ]
