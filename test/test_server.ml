(* Tests for the concurrent query server (lib/server): protocol round-trip
   fuzzing, the broker's admission control (budget backpressure, quotas,
   drain), the headline determinism contract — K concurrent analysts
   answered through batched sparse-vector evaluation produce bit-for-bit
   the transcript of a sequential replay in [seq] order, at every pool
   size — and drain-then-resume bit-identity through the PR 1 checkpoint
   path. Plus the ledger race regression the server's admission path pins
   down: concurrent [Budget.request]s must never double-spend. *)

module Universe = Pmw_data.Universe
module Synth = Pmw_data.Synth
module Domain = Pmw_convex.Domain
module Losses = Pmw_convex.Losses
module Params = Pmw_dp.Params
module Cm_query = Pmw_core.Cm_query
module Config = Pmw_core.Config
module Online = Pmw_core.Online_pmw
module Budget = Pmw_core.Budget
module Session = Pmw_session.Session
module Pool = Pmw_parallel.Pool
module Protocol = Pmw_server.Protocol
module Broker = Pmw_server.Broker
module Journal = Pmw_server.Journal
module Net = Pmw_server.Net
module Rng = Pmw_rng.Rng

(* Concurrency cases run inside a worker thread watched by a deadline, so
   a deadlocked broker (the failure mode these tests exist for) fails the
   suite with a message instead of hanging CI until the job timeout. *)
let with_timeout ?(seconds = 120.) name f =
  let finished = Atomic.make false in
  let failure = Atomic.make None in
  let worker =
    Thread.create
      (fun () ->
        (try f () with e -> Atomic.set failure (Some e));
        Atomic.set finished true)
      ()
  in
  let deadline = Unix.gettimeofday () +. seconds in
  while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  if not (Atomic.get finished) then
    Alcotest.failf "%s: timed out after %.0fs (broker deadlock?)" name seconds;
  Thread.join worker;
  match Atomic.get failure with Some e -> raise e | None -> ()

(* --- fixture: the same small regression setup the session tests use --- *)

let universe = Universe.regression_grid ~d:2 ~levels:5 ~label_levels:5 ()
let domain = Domain.unit_ball ~dim:2
let privacy = Params.create ~eps:1. ~delta:1e-6

let dataset =
  Synth.linear_regression ~universe ~theta_star:[| 0.5; -0.2 |] ~noise:0.1 ~n:3_000
    (Rng.create ~seed:7 ())

let config () =
  Config.practical ~universe ~privacy ~alpha:0.02 ~beta:0.05 ~scale:2. ~k:14 ~t_max:8
    ~solver_iters:120 ()

(* The registered workload: [resolve] must return the SAME physical query
   value per name — that is what lets a batch share its solves. *)
let panel =
  [
    ("sq", Cm_query.make ~name:"sq" ~loss:(Losses.squared ()) ~domain ());
    ("huber", Cm_query.make ~name:"huber" ~loss:(Losses.huber ~delta:0.5 ()) ~domain ());
    ("abs", Cm_query.make ~name:"abs" ~loss:(Losses.absolute ()) ~domain ());
    ("q3", Cm_query.make ~name:"q3" ~loss:(Losses.quantile ~tau:0.3 ()) ~domain ());
  ]

let resolve name = List.assoc_opt name panel
let query_of name = List.assoc name panel

let make_session ~pool ~seed () =
  Session.create ~pool ~config:(config ()) ~dataset ~rng:(Rng.create ~seed ()) ()

(* --- fingerprints: a response and a verdict must map to the same string
   when they carry the same answer, bit for bit ([%h] floats) --- *)

let vec_hex v = String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list v))
let source_str = function Online.From_hypothesis -> "hypothesis" | Online.From_oracle -> "oracle"

let verdict_fp = function
  | Online.Answered o ->
      Printf.sprintf "answered/%s/%d/%s" (source_str o.Online.source) o.Online.update_index
        (vec_hex o.Online.theta)
  | Online.Degraded (o, d) ->
      Printf.sprintf "degraded(%s)/%s/%d/%s"
        (Online.degradation_to_string d)
        (source_str o.Online.source) o.Online.update_index (vec_hex o.Online.theta)
  | Online.Refused r -> Printf.sprintf "refused(%s)" (Online.refusal_to_string r)

let response_fp (r : Protocol.response) =
  let part o f = match o with Some v -> f v | None -> "-" in
  match r.Protocol.rsp_status with
  | Protocol.Answered ->
      Printf.sprintf "answered/%s/%s/%s"
        (part r.Protocol.rsp_source Fun.id)
        (part r.Protocol.rsp_update_index string_of_int)
        (part r.Protocol.rsp_theta vec_hex)
  | Protocol.Degraded reason ->
      Printf.sprintf "degraded(%s)/%s/%s/%s" reason
        (part r.Protocol.rsp_source Fun.id)
        (part r.Protocol.rsp_update_index string_of_int)
        (part r.Protocol.rsp_theta vec_hex)
  | Protocol.Partial { missing_shards; coverage; reason; _ } ->
      Printf.sprintf "partial([%s]/%h/%s)/%s"
        (String.concat "," (List.map string_of_int missing_shards))
        coverage reason
        (part r.Protocol.rsp_theta vec_hex)
  | Protocol.Refused reason -> Printf.sprintf "refused(%s)" reason
  | Protocol.Rejected { reason; _ } -> Printf.sprintf "rejected(%s)" reason
  | Protocol.Failed reason -> Printf.sprintf "error(%s)" reason

(* --- protocol round-trip fuzzing --- *)

let float_eq a b =
  (Float.is_nan a && Float.is_nan b) || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let opt_eq eq a b =
  match (a, b) with Some x, Some y -> eq x y | None, None -> true | _ -> false

let status_eq a b =
  match (a, b) with
  | Protocol.Answered, Protocol.Answered -> true
  | Protocol.Degraded x, Protocol.Degraded y
  | Protocol.Refused x, Protocol.Refused y
  | Protocol.Failed x, Protocol.Failed y -> String.equal x y
  | ( Protocol.Rejected { retry_after_s = ra; reason = reason_a },
      Protocol.Rejected { retry_after_s = rb; reason = reason_b } ) ->
      String.equal reason_a reason_b && opt_eq float_eq ra rb
  | ( Protocol.Partial { missing_shards = ma; coverage = ca; retry_after_s = ra; reason = rna },
      Protocol.Partial { missing_shards = mb; coverage = cb; retry_after_s = rb; reason = rnb } )
    ->
      List.equal Int.equal ma mb && float_eq ca cb && opt_eq float_eq ra rb
      && String.equal rna rnb
  | _ -> false

let response_eq a b =
  a.Protocol.rsp_id = b.Protocol.rsp_id
  && a.Protocol.rsp_seq = b.Protocol.rsp_seq
  && status_eq a.Protocol.rsp_status b.Protocol.rsp_status
  && opt_eq
       (fun x y -> Array.length x = Array.length y && Array.for_all2 float_eq x y)
       a.Protocol.rsp_theta b.Protocol.rsp_theta
  && opt_eq String.equal a.Protocol.rsp_source b.Protocol.rsp_source
  && opt_eq Int.equal a.Protocol.rsp_update_index b.Protocol.rsp_update_index
  && opt_eq Int.equal a.Protocol.rsp_batch b.Protocol.rsp_batch
  && opt_eq float_eq a.Protocol.rsp_queue_wait_s b.Protocol.rsp_queue_wait_s
  && opt_eq float_eq a.Protocol.rsp_spent_eps b.Protocol.rsp_spent_eps
  && opt_eq float_eq a.Protocol.rsp_spent_delta b.Protocol.rsp_spent_delta

(* Every finite double must survive the %.17g wire format; NaN/±∞ ride as
   strings. [special_float] mixes all of them in. *)
let special_float =
  QCheck.Gen.(
    frequency
      [
        (6, float);
        (1, return Float.nan);
        (1, return Float.infinity);
        (1, return Float.neg_infinity);
        (1, return 0.);
        (1, return (-0.));
        (1, return Float.min_float);
        (1, return Float.max_float);
      ])

(* Integers travel as JSON numbers (doubles): only [±2^53] round-trips,
   which is the documented wire contract for ids. *)
let wire_int = QCheck.Gen.int_range (-0x20_0000_0000_0000) 0x20_0000_0000_0000

let gen_request =
  QCheck.Gen.(
    let* id = wire_int in
    let* analyst = string_size (int_bound 24) and* query = string_size (int_bound 24) in
    let* rid = option (string_size (int_bound 24)) in
    let* shards = option (list_size (int_bound 5) (int_bound 64)) in
    return
      { Protocol.req_id = id; req_analyst = analyst; req_query = query; req_rid = rid;
        req_shards = shards; req_trace = None; req_pspan = None; req_rows = None })

let gen_status =
  QCheck.Gen.(
    let reason = string_size (int_bound 40) in
    frequency
      [
        (3, return Protocol.Answered);
        (2, map (fun s -> Protocol.Degraded s) reason);
        (2, map (fun s -> Protocol.Refused s) reason);
        ( 2,
          map2
            (fun retry s -> Protocol.Rejected { retry_after_s = retry; reason = s })
            (option special_float) reason );
        ( 2,
          let* missing_shards = list_size (int_bound 4) (int_bound 64) in
          let* coverage = special_float and* retry_after_s = option special_float in
          map
            (fun s -> Protocol.Partial { missing_shards; coverage; retry_after_s; reason = s })
            reason );
        (1, map (fun s -> Protocol.Failed s) reason);
      ])

let gen_response =
  QCheck.Gen.(
    let* id = wire_int and* seq = wire_int and* status = gen_status in
    let* theta = option (array_size (int_bound 6) special_float) in
    let* source = option (oneofl [ "hypothesis"; "oracle" ]) in
    let* update_index = option small_nat and* batch = option small_nat in
    let* queue_wait = option special_float in
    let* spent_eps = option special_float and* spent_delta = option special_float in
    return
      {
        Protocol.rsp_id = id;
        rsp_seq = seq;
        rsp_status = status;
        rsp_theta = theta;
        rsp_source = source;
        rsp_update_index = update_index;
        rsp_batch = batch;
        rsp_queue_wait_s = queue_wait;
        rsp_spent_eps = spent_eps;
        rsp_spent_delta = spent_delta;
        rsp_epoch = None;
        rsp_body = None;
      })

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"request wire round-trip" ~count:300
    (QCheck.make ~print:Protocol.encode_request gen_request)
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req' -> req = req'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"response wire round-trip" ~count:300
    (QCheck.make ~print:Protocol.encode_response gen_response)
    (fun rsp ->
      match Protocol.decode_response (Protocol.encode_response rsp) with
      | Ok rsp' -> response_eq rsp rsp'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* --- framing hardening: corruption corpora ---

   What the wire can actually deliver after a fault: a prefix of a valid
   line (truncation), a valid line with a byte flipped (corruption), a NUL,
   an unbounded line. Decode must return a structured [Error] — never an
   exception, and for the corpora below never a silently-wrong [Ok]. *)

let decodes_gracefully line =
  (match Protocol.decode_request line with Ok _ | Error _ -> ());
  (match Protocol.decode_response line with Ok _ | Error _ -> ());
  true

let qcheck_truncated_prefix =
  QCheck.Test.make ~name:"decode of every truncated prefix never raises" ~count:200
    (QCheck.make
       ~print:(fun (rsp, cut) ->
         Printf.sprintf "cut=%d of %s" cut (Protocol.encode_response rsp))
       QCheck.Gen.(
         let* rsp = gen_response in
         let* cut = int_bound (String.length (Protocol.encode_response rsp)) in
         return (rsp, cut)))
    (fun (rsp, cut) ->
      let line = Protocol.encode_response rsp in
      decodes_gracefully (String.sub line 0 (min cut (String.length line))))

let qcheck_byte_flip =
  QCheck.Test.make ~name:"decode of any byte-flipped line never raises" ~count:300
    (QCheck.make
       ~print:(fun (req, pos, bits) ->
         Printf.sprintf "flip byte %d with %02x in %s" pos bits (Protocol.encode_request req))
       QCheck.Gen.(
         let* req = gen_request in
         let n = String.length (Protocol.encode_request req) in
         let* pos = int_bound (max 0 (n - 1)) and* bits = int_range 1 255 in
         return (req, pos, bits)))
    (fun (req, pos, bits) ->
      let line = Bytes.of_string (Protocol.encode_request req) in
      let pos = min pos (Bytes.length line - 1) in
      Bytes.set line pos (Char.chr (Char.code (Bytes.get line pos) lxor bits land 0xff));
      decodes_gracefully (Bytes.to_string line))

let test_frame_limits () =
  let nul = "{\"v\":1,\"id\":1,\"analyst\":\"a\x00b\",\"query\":\"sq\"}" in
  (match Protocol.decode_request nul with
  | Error reason -> Alcotest.(check bool) "NUL rejection has a reason" true (reason <> "")
  | Ok _ -> Alcotest.fail "a line with a NUL byte must be rejected");
  let huge =
    Protocol.encode_request
      {
        Protocol.req_id = 1;
        req_analyst = "a";
        req_query = String.make (Protocol.max_line_bytes + 1) 'q';
        req_rid = None;
        req_shards = None;
        req_trace = None;
        req_pspan = None;
        req_rows = None;
      }
  in
  (match Protocol.decode_request huge with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "a %d-byte line must exceed the frame limit" (String.length huge));
  match Protocol.decode_response huge with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized response line must be rejected too"

let test_protocol_versioning () =
  let ok =
    Protocol.encode_request
      { Protocol.req_id = 1; req_analyst = "a"; req_query = "sq"; req_rid = None; req_shards = None; req_trace = None; req_pspan = None; req_rows = None }
  in
  (match Protocol.decode_request ok with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "well-formed line rejected: %s" e);
  let wrong_version = {|{"v":2,"id":1,"analyst":"a","query":"sq"}|} in
  (match Protocol.decode_request wrong_version with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future schema version must be refused, not mis-parsed");
  let no_version = {|{"id":1,"analyst":"a","query":"sq"}|} in
  (match Protocol.decode_request no_version with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing version must be refused");
  match Protocol.decode_request (ok ^ " trailing") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes after the object must be an error"

(* --- the ledger race regression ---

   Before the server work, [Budget.request] read the remainder and granted
   in two separate steps; two threads racing through admission could both
   observe the same remainder and both be granted — a double-spend. The
   pot below fits exactly 100 slices; 8 threads fight over 320 attempts
   and exactly 100 may win, with the spend never crossing the cap. *)
let test_budget_request_race () =
  let budget = Budget.create (Params.create ~eps:1. ~delta:1e-6) in
  let slice = Params.create ~eps:0.01 ~delta:1e-8 in
  let grants = Atomic.make 0 in
  let threads =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 40 do
              match Budget.request budget slice with
              | Ok _ -> Atomic.incr grants
              | Error _ -> Thread.yield ()
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "exactly the 100 slices that fit were granted" 100 (Atomic.get grants);
  Alcotest.(check int) "ledger history matches the grants" 100
    (List.length (Budget.history budget));
  let spent = Budget.spent budget in
  let total = Budget.total budget in
  Alcotest.(check bool) "eps never over-spent" true
    (spent.Params.eps <= total.Params.eps *. (1. +. 1e-9));
  Alcotest.(check bool) "delta never over-spent" true
    (spent.Params.delta <= total.Params.delta *. (1. +. 1e-9))

let test_budget_fits_is_read_only () =
  let budget = Budget.create (Params.create ~eps:1. ~delta:1e-6) in
  let slice = Params.create ~eps:0.4 ~delta:1e-7 in
  (match Budget.fits budget slice with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (float 0.)) "fits debited nothing" 0. (Budget.spent budget).Params.eps

(* --- serving scenarios (in-process clients against a live broker) --- *)

let submit ?rid broker ~id ~analyst ~query =
  Broker.submit broker
    { Protocol.req_id = id; req_analyst = analyst; req_query = query; req_rid = rid;
      req_shards = None; req_trace = None; req_pspan = None; req_rows = None }

(* Run [assignments] = (analyst, query names) pairs concurrently through a
   broker, one thread per analyst, serializer on the calling thread (which
   must own [pool]); return the transcript sorted by [seq]. *)
let serve_concurrent ?checkpoint ~pool ~max_batch ~seed assignments =
  let session = make_session ~pool ~seed () in
  let broker =
    Broker.create
      ~config:{ Broker.default_config with max_batch }
      ~session ~resolve ()
  in
  let slots =
    Array.make (List.fold_left (fun acc (_, qs) -> acc + List.length qs) 0 assignments) None
  in
  let base = ref 0 in
  let analyst_threads =
    List.map
      (fun (analyst, qs) ->
        let offset = !base in
        base := offset + List.length qs;
        Thread.create
          (fun () ->
            List.iteri
              (fun i name ->
                let rsp = submit broker ~id:i ~analyst ~query:name in
                slots.(offset + i) <- Some (rsp.Protocol.rsp_seq, name, response_fp rsp))
              qs)
          ())
      assignments
  in
  let closer =
    Thread.create
      (fun () ->
        List.iter Thread.join analyst_threads;
        Broker.shutdown broker)
      ()
  in
  Broker.run ?checkpoint broker;
  Thread.join closer;
  Alcotest.(check bool) "broker drained" true (Broker.drained broker);
  let transcript =
    Array.to_list slots
    |> List.map (function
         | Some entry -> entry
         | None -> Alcotest.fail "an analyst request got no reply")
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (* seq slots are the integers 0..n-1: every admitted request was
     processed exactly once, in a total order. *)
  List.iteri
    (fun i (seq, _, _) -> Alcotest.(check int) "seq slots are dense" i seq)
    transcript;
  (session, transcript)

let assignments =
  [
    ("alice", [ "sq"; "huber"; "abs"; "q3" ]);
    ("bob", [ "abs"; "sq"; "q3"; "huber" ]);
    ("carol", [ "q3"; "abs"; "huber"; "sq" ]);
  ]

(* The headline contract: for every pool size, K concurrent analysts
   served through batched evaluation produce exactly the verdicts of a
   fresh session replaying the same queries sequentially in [seq] order. *)
let concurrent_matches_sequential_replay ~domains () =
  let pool = Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let _, transcript = serve_concurrent ~pool ~max_batch:4 ~seed:42 assignments in
      let replay = make_session ~pool ~seed:42 () in
      List.iter
        (fun (seq, name, fp) ->
          let fp' = verdict_fp (Session.answer replay (query_of name)) in
          Alcotest.(check string) (Printf.sprintf "seq %d (%s)" seq name) fp' fp)
        transcript)

let pmw_domains () =
  match Sys.getenv_opt "PMW_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

(* Backpressure: once the pot cannot fund one more oracle attempt, submit
   must reject immediately — with a retry hint, without blocking, without
   consuming a seq slot, and without touching the ledger. *)
let test_backpressure_on_exhausted_budget () =
  let pool = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let session = make_session ~pool ~seed:13 () in
      ignore (Budget.request_all (Session.budget session));
      let spent_before = (Budget.spent (Session.budget session)).Params.eps in
      let broker = Broker.create ~session ~resolve () in
      let rsp = submit broker ~id:7 ~analyst:"alice" ~query:"sq" in
      (match rsp.Protocol.rsp_status with
      | Protocol.Rejected { retry_after_s = Some retry; reason } ->
          Alcotest.(check (float 0.)) "default retry hint" 1. retry;
          Alcotest.(check bool) ("admission reason: " ^ reason) true
            (String.length reason > 0)
      | other ->
          Alcotest.failf "expected budget rejection, got %s" (Protocol.status_tag other));
      Alcotest.(check int) "no seq slot consumed" (-1) rsp.Protocol.rsp_seq;
      Alcotest.(check int) "nothing processed" 0 (Broker.processed broker);
      Alcotest.(check (float 0.)) "ledger untouched by the rejection" spent_before
        (Budget.spent (Session.budget session)).Params.eps;
      match Broker.analysts broker with
      | [ a ] ->
          Alcotest.(check string) "analyst recorded" "alice" a.Broker.an_id;
          Alcotest.(check int) "rejection tallied" 1 a.Broker.an_rejected;
          Alcotest.(check int) "not counted as submitted" 0 a.Broker.an_submitted
      | l -> Alcotest.failf "expected one analyst record, got %d" (List.length l))

(* Quotas, unknown queries, drain: one closed-loop client walks through
   every non-budget admission outcome. *)
let test_quota_unknown_and_drain () =
  let pool = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let session = make_session ~pool ~seed:11 () in
      let broker =
        Broker.create
          ~config:{ Broker.default_config with max_batch = 2; quota = 2; retry_after_s = 0.25 }
          ~session ~resolve ()
      in
      let replies = ref [] in
      let client =
        Thread.create
          (fun () ->
            let r1 = submit broker ~id:0 ~analyst:"a" ~query:"sq" in
            let r2 = submit broker ~id:1 ~analyst:"a" ~query:"no-such-query" in
            let r3 = submit broker ~id:2 ~analyst:"a" ~query:"sq" in
            replies := [ r1; r2; r3 ];
            Broker.shutdown broker)
          ()
      in
      Broker.run broker;
      Thread.join client;
      (match !replies with
      | [ r1; r2; r3 ] ->
          (match r1.Protocol.rsp_status with
          | Protocol.Answered | Protocol.Degraded _ -> ()
          | s -> Alcotest.failf "first query should be served, got %s" (Protocol.status_tag s));
          (match r2.Protocol.rsp_status with
          | Protocol.Failed reason ->
              Alcotest.(check bool) "unknown query named in the error" true
                (String.length reason > 0);
              Alcotest.(check int) "failed request still holds its seq slot" 1
                r2.Protocol.rsp_seq
          | s -> Alcotest.failf "unknown query must fail, got %s" (Protocol.status_tag s));
          (match r3.Protocol.rsp_status with
          | Protocol.Rejected { retry_after_s = None; _ } -> ()
          | Protocol.Rejected { retry_after_s = Some _; _ } ->
              Alcotest.fail "quota rejection must not carry a retry hint (it is permanent)"
          | s ->
              Alcotest.failf "over-quota request must be rejected, got %s"
                (Protocol.status_tag s))
      | _ -> Alcotest.fail "client did not complete");
      (* after [run] returns the broker stays up for queries-after-drain:
         they are rejected, never enqueued *)
      let late = submit broker ~id:9 ~analyst:"b" ~query:"sq" in
      match late.Protocol.rsp_status with
      | Protocol.Rejected { reason; _ } ->
          Alcotest.(check bool) "draining reason" true (String.length reason > 0)
      | s -> Alcotest.failf "post-drain submit must be rejected, got %s" (Protocol.status_tag s))

(* Drain-then-resume bit-identity: a concurrently-serving broker is
   drained with a final checkpoint; a session resumed from that file must
   continue the verdict stream exactly where an uninterrupted sequential
   run would be. *)
let test_drain_then_resume_bit_identity () =
  let ckpt = Filename.temp_file "pmw_server_test" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      let pool = Pool.create ~domains:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let phase1 = [ ("alice", [ "sq"; "huber"; "abs" ]); ("bob", [ "q3"; "sq"; "abs" ]) ] in
          let tail = [ "q3"; "huber"; "sq"; "abs" ] in
          let _, transcript = serve_concurrent ~checkpoint:ckpt ~pool ~max_batch:3 ~seed:42 phase1 in
          let resumed =
            match
              Session.resume_path ~pool ~config:(config ()) ~dataset
                ~rng:(Rng.create ~seed:999 ()) (* overwritten by the checkpoint *)
                ~path:ckpt ()
            with
            | Ok s -> s
            | Error e -> Alcotest.failf "resume failed: %s" e
          in
          let tail_resumed =
            List.map (fun n -> verdict_fp (Session.answer resumed (query_of n))) tail
          in
          (* uninterrupted control: the served prefix in seq order, then the tail *)
          let control = make_session ~pool ~seed:42 () in
          List.iter
            (fun (seq, name, fp) ->
              let fp' = verdict_fp (Session.answer control (query_of name)) in
              Alcotest.(check string) (Printf.sprintf "prefix seq %d (%s)" seq name) fp' fp)
            transcript;
          let tail_control =
            List.map (fun n -> verdict_fp (Session.answer control (query_of n))) tail
          in
          List.iteri
            (fun i (expected, got) ->
              Alcotest.(check string) (Printf.sprintf "tail query %d bit-identical" i) expected
                got)
            (List.combine tail_control tail_resumed);
          (* and the resumed ledger continues the drained one *)
          let open Params in
          let a = Budget.spent (Session.budget control) in
          let b = Budget.spent (Session.budget resumed) in
          Alcotest.(check (float 1e-9)) "resumed eps spend matches control" a.eps b.eps;
          Alcotest.(check (float 1e-15)) "resumed delta spend matches control" a.delta b.delta))

(* --- idempotent retries: the dedup layer --- *)

(* A retried [rid] must get the recorded bytes back: no new seq slot, no
   ledger movement, no fresh noise — and the hit must be tallied. *)
let test_dedup_same_rid () =
  let pool = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let session = make_session ~pool ~seed:21 () in
      let broker = Broker.create ~session ~resolve () in
      let out = ref None in
      let client =
        Thread.create
          (fun () ->
            let r1 = submit broker ~rid:"r-0" ~id:0 ~analyst:"a" ~query:"sq" in
            let spent1 = (Budget.spent (Session.budget session)).Params.eps in
            let r2 = submit broker ~rid:"r-0" ~id:0 ~analyst:"a" ~query:"sq" in
            let spent2 = (Budget.spent (Session.budget session)).Params.eps in
            let processed = Broker.processed broker in
            let r3 = submit broker ~rid:"r-1" ~id:1 ~analyst:"a" ~query:"huber" in
            out := Some (r1, r2, r3, spent1, spent2, processed);
            Broker.shutdown broker)
          ()
      in
      Broker.run broker;
      Thread.join client;
      match !out with
      | None -> Alcotest.fail "client did not complete"
      | Some (r1, r2, r3, spent1, spent2, processed) ->
          Alcotest.(check string) "retried rid got byte-identical answer"
            (Protocol.encode_response r1) (Protocol.encode_response r2);
          Alcotest.(check (float 0.)) "retry moved no budget" spent1 spent2;
          Alcotest.(check int) "retry consumed no batch slot" 1 processed;
          Alcotest.(check int) "dedup hit tallied" 1 (Broker.dedup_hits broker);
          Alcotest.(check int) "next fresh request takes the next seq" 1 r3.Protocol.rsp_seq)

(* A restarted client may reuse its rid under a fresh [req_id] (it
   persisted rids, not its id counter). The recorded payload must come
   back re-correlated to the retry's own id — otherwise the client-side
   [rsp_id = req_id] check rejects the recorded answer as a desync and the
   retry can never succeed. *)
let test_dedup_fresh_req_id () =
  let pool = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let session = make_session ~pool ~seed:22 () in
      let broker = Broker.create ~session ~resolve () in
      let out = ref None in
      let client =
        Thread.create
          (fun () ->
            let r1 = submit broker ~rid:"r-0" ~id:0 ~analyst:"a" ~query:"sq" in
            let r2 = submit broker ~rid:"r-0" ~id:41 ~analyst:"a" ~query:"sq" in
            out := Some (r1, r2);
            Broker.shutdown broker)
          ()
      in
      Broker.run broker;
      Thread.join client;
      match !out with
      | None -> Alcotest.fail "client did not complete"
      | Some (r1, r2) ->
          Alcotest.(check int) "reply re-correlated to the retry's id" 41 r2.Protocol.rsp_id;
          Alcotest.(check string) "payload identical to the recorded answer"
            (Protocol.encode_response { r1 with Protocol.rsp_id = 41 })
            (Protocol.encode_response r2);
          Alcotest.(check int) "dedup hit tallied" 1 (Broker.dedup_hits broker);
          Alcotest.(check int) "retry consumed no batch slot" 1 (Broker.processed broker))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The same contract across a crash: incarnation 2 replays the journal,
   quarantines the recorded spend, and serves the recorded bytes for a
   retried rid without evaluating anything. *)
let test_dedup_survives_restart () =
  let jpath = Filename.temp_file "pmw_server_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove jpath with Sys_error _ -> ())
    (fun () ->
      let pool = Pool.create ~domains:1 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let serve_one ~expect_fresh () =
            let session = make_session ~pool ~seed:33 () in
            let journal, recovery =
              match Journal.open_journal ~path:jpath with
              | Ok jr -> jr
              | Error e -> Alcotest.failf "journal open: %s" e
            in
            let cum_eps, _ = recovery.Journal.rv_cum in
            let broker = Broker.create ~session ~resolve ~journal ~recovery () in
            if not expect_fresh then begin
              let spent = (Budget.spent (Session.budget session)).Params.eps in
              Alcotest.(check bool)
                (Printf.sprintf "journal spend quarantined (%.4f covers %.4f)" spent cum_eps)
                true
                (spent >= cum_eps -. 1e-9)
            end;
            let out = ref None in
            let client =
              Thread.create
                (fun () ->
                  out := Some (submit broker ~rid:"rid-7" ~id:0 ~analyst:"alice" ~query:"sq");
                  Broker.shutdown broker)
                ()
            in
            Broker.run broker;
            Thread.join client;
            Journal.close journal;
            (* [processed] is the next seq slot: incarnation 2 starts at
               rv_max_seq + 1 = 1 and must not have consumed another *)
            Alcotest.(check int)
              (if expect_fresh then "incarnation 1 evaluated the query"
               else "incarnation 2 consumed no new seq slot")
              1 (Broker.processed broker);
            Alcotest.(check int) "dedup hits"
              (if expect_fresh then 0 else 1)
              (Broker.dedup_hits broker);
            match !out with
            | Some r -> Protocol.encode_response r
            | None -> Alcotest.fail "no reply"
          in
          let line1 = serve_one ~expect_fresh:true () in
          let line2 = serve_one ~expect_fresh:false () in
          Alcotest.(check string) "recorded bytes served across the restart" line1 line2))

(* Drain regression: requests already queued when shutdown is called must
   each get exactly one reply — answered with its bytes journaled, or
   rejected (nothing charged). None may hang, none may vanish. *)
let test_drain_answers_queued () =
  let jpath = Filename.temp_file "pmw_server_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove jpath with Sys_error _ -> ())
    (fun () ->
      let pool = Pool.create ~domains:1 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let session = make_session ~pool ~seed:55 () in
          let journal, recovery =
            match Journal.open_journal ~path:jpath with
            | Ok jr -> jr
            | Error e -> Alcotest.failf "journal open: %s" e
          in
          let broker =
            Broker.create
              ~config:{ Broker.default_config with max_batch = 2 }
              ~session ~resolve ~journal ~recovery ()
          in
          let n = 6 in
          let replies = Array.make n None in
          let started = Atomic.make 0 in
          let clients =
            List.init n (fun i ->
                Thread.create
                  (fun () ->
                    Atomic.incr started;
                    replies.(i) <-
                      Some
                        (submit broker
                           ~rid:(Printf.sprintf "d-%d" i)
                           ~id:i ~analyst:"a" ~query:"sq"))
                  ())
          in
          while Atomic.get started < n do
            Thread.yield ()
          done;
          Broker.shutdown broker;
          Broker.run broker;
          List.iter Thread.join clients;
          Journal.close journal;
          let rv =
            match Journal.replay_string (read_file jpath) with
            | Ok rv -> rv
            | Error e -> Alcotest.failf "journal replay: %s" e
          in
          Alcotest.(check bool) "no torn tail after a clean drain" false rv.Journal.rv_torn;
          (* debit-before-answers ordering: at every journal prefix, the
             spend an answer reports to its client is already covered by
             the last durable debit — the crash-safety direction (a kill
             between the appends can over-count, never under-cover) *)
          let cum = ref 0. in
          List.iter
            (fun r ->
              match r with
              | Journal.Debit { jd_cum_eps; _ } -> cum := jd_cum_eps
              | Journal.Answer { ja_seq; ja_line; _ } -> (
                  match Protocol.decode_response ja_line with
                  | Error why -> Alcotest.failf "journaled answer unreadable: %s" why
                  | Ok rsp ->
                      Option.iter
                        (fun e ->
                          Alcotest.(check bool)
                            (Printf.sprintf
                               "answer seq %d spend %.6g covered by the preceding debit %.6g"
                               ja_seq e !cum)
                            true
                            (!cum +. 1e-9 >= e))
                        rsp.Protocol.rsp_spent_eps)
              | Journal.Mark _ | Journal.Epoch _ | Journal.Ingest _ -> ())
            rv.Journal.rv_records;
          Array.iteri
            (fun i reply ->
              match reply with
              | None -> Alcotest.failf "request %d never got a reply" i
              | Some r -> (
                  match r.Protocol.rsp_status with
                  | Protocol.Rejected _ -> ()
                  | _ ->
                      let key = ("a", Printf.sprintf "d-%d" i) in
                      let line = Protocol.encode_response r in
                      let journaled =
                        List.exists
                          (fun (k, l) -> k = key && String.equal l line)
                          rv.Journal.rv_answers
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf "answer %d journaled byte-identically" i)
                        true journaled))
            replies))

(* --- client deadline: a stalled server surfaces as [Timeout] --- *)

let test_client_timeout_on_stalled_socket () =
  let path = Filename.temp_file "pmw_stall" ".sock" in
  Sys.remove path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 1;
  (* accept but never answer: the client's SO_RCVTIMEO must fire *)
  let accepted = ref None in
  let accepter =
    Thread.create
      (fun () ->
        match Unix.accept srv with
        | fd, _ -> accepted := Some fd
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      Thread.join accepter;
      (match !accepted with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let client = Net.Client.connect ~deadline_s:0.2 path in
      let req =
        { Protocol.req_id = 0; req_analyst = "a"; req_query = "sq"; req_rid = None; req_shards = None; req_trace = None; req_pspan = None; req_rows = None }
      in
      let t0 = Unix.gettimeofday () in
      (match Net.Client.call client req with
      | Error Net.Client.Timeout -> ()
      | Ok _ -> Alcotest.fail "a stalled server cannot have answered"
      | Error e -> Alcotest.failf "expected Timeout, got %s" (Net.Client.error_to_string e));
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "deadline honored (%.3fs, not hung)" dt)
        true (dt < 5.);
      Net.Client.close client)

let () =
  Alcotest.run "pmw_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "versioning and framing" `Quick test_protocol_versioning;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5e7 |])
            qcheck_request_roundtrip;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5e8 |])
            qcheck_response_roundtrip;
          Alcotest.test_case "frame limits (NUL, oversize)" `Quick test_frame_limits;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5e9 |])
            qcheck_truncated_prefix;
          QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5ea |])
            qcheck_byte_flip;
        ] );
      ( "budget race",
        [
          Alcotest.test_case "concurrent request never double-spends" `Quick
            (fun () -> with_timeout ~seconds:60. "budget race" test_budget_request_race);
          Alcotest.test_case "fits is read-only" `Quick test_budget_fits_is_read_only;
        ] );
      ( "admission",
        [
          Alcotest.test_case "backpressure on exhausted budget" `Quick (fun () ->
              with_timeout ~seconds:120. "backpressure" test_backpressure_on_exhausted_budget);
          Alcotest.test_case "quota, unknown query, drain" `Quick (fun () ->
              with_timeout ~seconds:240. "quota scenario" test_quota_unknown_and_drain);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "concurrent = sequential replay (pool 1)" `Quick (fun () ->
              with_timeout ~seconds:480. "determinism pool 1"
                (concurrent_matches_sequential_replay ~domains:1));
          Alcotest.test_case "concurrent = sequential replay (pool 2)" `Quick (fun () ->
              with_timeout ~seconds:480. "determinism pool 2"
                (concurrent_matches_sequential_replay ~domains:2));
          Alcotest.test_case "concurrent = sequential replay (pool PMW_DOMAINS)" `Quick
            (fun () ->
              with_timeout ~seconds:480. "determinism pool PMW_DOMAINS"
                (concurrent_matches_sequential_replay ~domains:(pmw_domains ())));
        ] );
      ( "drain/resume",
        [
          Alcotest.test_case "drain-then-resume bit-identity" `Quick (fun () ->
              with_timeout ~seconds:480. "drain/resume" test_drain_then_resume_bit_identity);
          Alcotest.test_case "drain answers or rejects everything queued" `Quick (fun () ->
              with_timeout ~seconds:240. "drain queued" test_drain_answers_queued);
        ] );
      ( "idempotent retries",
        [
          Alcotest.test_case "same rid returns recorded bytes" `Quick (fun () ->
              with_timeout ~seconds:240. "dedup same rid" test_dedup_same_rid);
          Alcotest.test_case "retried rid re-correlates to a fresh req_id" `Quick (fun () ->
              with_timeout ~seconds:240. "dedup fresh req_id" test_dedup_fresh_req_id);
          Alcotest.test_case "dedup survives a journal restart" `Quick (fun () ->
              with_timeout ~seconds:240. "dedup restart" test_dedup_survives_restart);
        ] );
      ( "client deadlines",
        [
          Alcotest.test_case "stalled socket surfaces Timeout" `Quick (fun () ->
              with_timeout ~seconds:60. "stalled socket" test_client_timeout_on_stalled_socket);
        ] );
    ]
