(* Tests for Pmw_dp: the composition algebra (Theorem 3.10), noise
   calibrations of the basic mechanisms, distributional correctness of the
   exponential mechanism, the sparse-vector algorithm's Theorem 3.1
   guarantees, and the privacy accountants. *)

module Params = Pmw_dp.Params
module Mechanisms = Pmw_dp.Mechanisms
module Sv = Pmw_dp.Sparse_vector
module Accountant = Pmw_dp.Accountant
module Rng = Pmw_rng.Rng

let checkf tol = Alcotest.(check (float tol))

(* --- Params / composition --- *)

let test_params_validation () =
  Alcotest.check_raises "negative eps" (Invalid_argument "Params.create: eps must be non-negative")
    (fun () -> ignore (Params.create ~eps:(-1.) ~delta:0.));
  Alcotest.check_raises "delta > 1" (Invalid_argument "Params.create: delta must lie in [0, 1]")
    (fun () -> ignore (Params.create ~eps:1. ~delta:2.))

let test_basic_composition () =
  let total =
    Params.compose_basic
      [ Params.create ~eps:0.5 ~delta:1e-7; Params.create ~eps:0.25 ~delta:1e-7 ]
  in
  checkf 1e-12 "eps adds" 0.75 total.Params.eps;
  checkf 1e-16 "delta adds" 2e-7 total.Params.delta

let test_advanced_composition_formula () =
  (* Theorem 3.10 verbatim: eps' = sqrt(2 T ln(1/d')) eps + 2 T eps^2. *)
  let t = 100 and eps0 = 0.01 and delta0 = 1e-9 and slack = 1e-6 in
  let out = Params.compose_advanced ~count:t ~slack (Params.create ~eps:eps0 ~delta:delta0) in
  let expected =
    (sqrt (2. *. 100. *. log 1e6) *. eps0) +. (2. *. 100. *. eps0 *. eps0)
  in
  checkf 1e-12 "eps formula" expected out.Params.eps;
  checkf 1e-16 "delta = slack + T delta0" (slack +. (100. *. delta0)) out.Params.delta

let test_advanced_beats_basic_for_many_calls () =
  let eps0 = 0.01 and t = 10_000 in
  let adv = Params.compose_advanced ~count:t ~slack:1e-6 (Params.pure eps0) in
  let basic = Params.compose_basic (List.init t (fun _ -> Params.pure eps0)) in
  Alcotest.(check bool) "advanced tighter" true (adv.Params.eps < basic.Params.eps)

let test_split_advanced_round_trip () =
  (* The paper's split must compose back within budget. *)
  let budget = Params.create ~eps:1. ~delta:1e-6 in
  List.iter
    (fun count ->
      let per_call = Params.split_advanced ~count budget in
      Alcotest.(check bool)
        (Printf.sprintf "T=%d round trip" count)
        true
        (Params.check_advanced_split ~count ~budget ~per_call))
    [ 1; 5; 50; 500 ]

let test_split_basic () =
  let p = Params.split_basic ~count:4 (Params.create ~eps:2. ~delta:4e-6) in
  checkf 1e-12 "eps" 0.5 p.Params.eps;
  checkf 1e-16 "delta" 1e-6 p.Params.delta

(* --- mechanisms --- *)

let test_laplace_noise_scale () =
  let rng = Rng.create ~seed:41 () in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let noisy = Mechanisms.laplace ~eps:0.5 ~sensitivity:2. 10. rng in
    let noise = noisy -. 10. in
    acc := !acc +. (noise *. noise)
  done;
  (* Var = 2 (sens/eps)^2 = 32 *)
  let var = !acc /. float_of_int n in
  Alcotest.(check bool) "variance 2(s/e)^2" true (Float.abs (var -. 32.) < 2.)

let test_gaussian_sigma_formula () =
  let sigma = Mechanisms.gaussian_sigma ~eps:1. ~delta:1e-5 ~sensitivity:2. in
  checkf 1e-9 "classical calibration" (2. *. sqrt (2. *. log (1.25 /. 1e-5))) sigma

let test_gaussian_vector_dims () =
  let rng = Rng.create ~seed:42 () in
  let v = Mechanisms.gaussian_vector ~eps:1. ~delta:1e-5 ~l2_sensitivity:0.1 [| 1.; 2.; 3. |] rng in
  Alcotest.(check int) "dim preserved" 3 (Array.length v)

let test_exponential_mechanism_distribution () =
  (* Two candidates with score gap g: Pr(best) / Pr(other) = exp(eps g / 2 s). *)
  let rng = Rng.create ~seed:43 () in
  let eps = 2. and scores = [| 1.; 0. |] in
  let n = 200_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Mechanisms.exponential ~eps ~sensitivity:1. ~scores rng = 0 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  let expected = exp (eps /. 2.) /. (exp (eps /. 2.) +. 1.) in
  Alcotest.(check bool) "matches closed form" true (Float.abs (p -. expected) < 0.005)

let test_exponential_zero_sensitivity_uniform () =
  (* sensitivity 0 means scores cannot matter; we define it as uniform. *)
  let rng = Rng.create ~seed:44 () in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Mechanisms.exponential ~eps:1. ~sensitivity:0. ~scores:[| 100.; 0. |] rng = 0 then incr hits
  done;
  let p = float_of_int !hits /. 50_000. in
  Alcotest.(check bool) "uniform" true (Float.abs (p -. 0.5) < 0.01)

let test_report_noisy_max_prefers_max () =
  let rng = Rng.create ~seed:45 () in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Mechanisms.report_noisy_max ~eps:5. ~sensitivity:0.1 ~scores:[| 0.; 3.; 1. |] rng = 1 then
      incr hits
  done;
  Alcotest.(check bool) "picks the max almost always" true (!hits > 9_900)

let test_randomized_response_bias () =
  let rng = Rng.create ~seed:46 () in
  let truths = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Mechanisms.randomized_response ~eps:1. true rng then incr truths
  done;
  let p = float_of_int !truths /. float_of_int n in
  let expected = exp 1. /. (1. +. exp 1.) in
  Alcotest.(check bool) "truth rate e^eps/(1+e^eps)" true (Float.abs (p -. expected) < 0.01)

(* --- sparse vector --- *)

let make_sv ?(t_max = 5) ?(k = 1000) ?(threshold = 1.) ?(eps = 5.) ?(sensitivity = 0.001) seed =
  Sv.create ~t_max ~k ~threshold
    ~privacy:(Params.create ~eps ~delta:1e-6)
    ~sensitivity
    ~rng:(Rng.create ~seed ())
    ()

let test_sv_accuracy_on_clear_gaps () =
  (* With tiny sensitivity (large n), answers must respect the gap. *)
  let sv = make_sv 47 in
  for _ = 1 to 3 do
    (match Sv.query sv 2.0 with
    | Some Sv.Top -> ()
    | Some Sv.Bottom -> Alcotest.fail "value >= threshold answered Bottom"
    | None -> Alcotest.fail "halted early");
    match Sv.query sv 0.0 with
    | Some Sv.Bottom -> ()
    | Some Sv.Top -> Alcotest.fail "value <= threshold/2 answered Top"
    | None -> Alcotest.fail "halted early"
  done

let test_sv_halts_after_t_tops () =
  let sv = make_sv ~t_max:3 48 in
  let tops = ref 0 in
  (try
     for _ = 1 to 100 do
       match Sv.query sv 10. with
       | Some Sv.Top -> incr tops
       | Some Sv.Bottom -> ()
       | None -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check int) "exactly t_max tops" 3 !tops;
  Alcotest.(check bool) "halted" true (Sv.halted sv);
  Alcotest.(check bool) "rejects further queries" true (Sv.query sv 0. = None)

let test_sv_stream_length_bound () =
  let sv = make_sv ~k:4 49 in
  for _ = 1 to 4 do
    ignore (Sv.query sv 0.)
  done;
  Alcotest.(check bool) "halted after k queries" true (Sv.halted sv);
  Alcotest.(check int) "asked = k" 4 (Sv.queries_asked sv)

let test_sv_per_epoch_eps () =
  let sv = make_sv ~t_max:10 ~eps:1. 50 in
  let expected = (Params.split_advanced ~count:10 (Params.create ~eps:1. ~delta:1e-6)).Params.eps in
  checkf 1e-12 "epoch budget from advanced split" expected (Sv.per_epoch_eps sv)

let test_sv_theorem_3_1_bound_shape () =
  let n t = Sv.theorem_3_1_n ~t_max:t ~k:100 ~threshold:0.1
              ~privacy:(Params.create ~eps:1. ~delta:1e-6) ~beta:0.05 ~sensitivity_scale:1. in
  (* grows like sqrt(T) *)
  let r = n 400 /. n 100 in
  Alcotest.(check bool) "sqrt scaling in T" true (Float.abs (r -. 2.) < 0.01)

let test_sv_validation () =
  Alcotest.check_raises "t_max" (Invalid_argument "Sparse_vector.create: t_max must be positive")
    (fun () -> ignore (make_sv ~t_max:0 51))

(* --- analytic gaussian (Balle-Wang) --- *)

module Ag = Pmw_dp.Analytic_gaussian

let test_analytic_sigma_achieves_delta () =
  List.iter
    (fun (eps, delta) ->
      let s = Ag.sigma ~eps ~delta ~sensitivity:1. in
      let achieved = Ag.delta_of_sigma ~eps ~sensitivity:1. ~sigma:s in
      Alcotest.(check bool)
        (Printf.sprintf "delta met at eps=%g" eps)
        true
        (Float.abs (achieved -. delta) < 1e-4 *. delta +. 1e-12);
      (* any smaller sigma must violate delta *)
      let worse = Ag.delta_of_sigma ~eps ~sensitivity:1. ~sigma:(s *. 0.9) in
      Alcotest.(check bool) "minimal" true (worse > delta))
    [ (0.1, 1e-6); (1., 1e-6); (3., 1e-8) ]

let test_analytic_beats_classical () =
  List.iter
    (fun eps ->
      let classical = Mechanisms.gaussian_sigma ~eps ~delta:1e-6 ~sensitivity:1. in
      let analytic = Ag.sigma ~eps ~delta:1e-6 ~sensitivity:1. in
      Alcotest.(check bool)
        (Printf.sprintf "analytic smaller at eps=%g" eps)
        true (analytic < classical))
    [ 0.1; 0.5; 1. ]

let test_analytic_monotone () =
  let s1 = Ag.sigma ~eps:0.5 ~delta:1e-6 ~sensitivity:1. in
  let s2 = Ag.sigma ~eps:1. ~delta:1e-6 ~sensitivity:1. in
  Alcotest.(check bool) "sigma falls as eps grows" true (s2 < s1);
  let s3 = Ag.sigma ~eps:0.5 ~delta:1e-4 ~sensitivity:1. in
  Alcotest.(check bool) "sigma falls as delta grows" true (s3 < s1);
  checkf 1e-12 "zero sensitivity" 0. (Ag.sigma ~eps:1. ~delta:1e-6 ~sensitivity:0.)

let test_analytic_scales_with_sensitivity () =
  let s1 = Ag.sigma ~eps:1. ~delta:1e-6 ~sensitivity:1. in
  let s2 = Ag.sigma ~eps:1. ~delta:1e-6 ~sensitivity:2. in
  checkf 1e-6 "sigma linear in sensitivity" (2. *. s1) s2

(* --- RDP accountant --- *)

module Rdp = Pmw_dp.Rdp

let test_rdp_gaussian_known_value () =
  (* one Gaussian event at sigma=1, sensitivity=1: eps(alpha) = alpha/2;
     conversion eps = min_a a/2 + log(1/delta)/(a-1). *)
  let acc = Rdp.create () in
  Rdp.spend_gaussian acc ~sigma:1. ~sensitivity:1.;
  let expected =
    Array.fold_left
      (fun best a -> Float.min best ((a /. 2.) +. (log 1e6 /. (a -. 1.))))
      infinity (Rdp.orders acc)
  in
  checkf 1e-9 "closed form over the grid" expected (Rdp.epsilon acc ~delta:1e-6)

let test_rdp_composes_additively () =
  let one = Rdp.create () in
  Rdp.spend_gaussian one ~sigma:10. ~sensitivity:1.;
  let ten = Rdp.create () in
  for _ = 1 to 100 do
    Rdp.spend_gaussian ten ~sigma:10. ~sensitivity:1.
  done;
  (* 100 events at sigma=10 = 1 event at sigma=1 in rho; conversion equal *)
  let single_equiv = Rdp.create () in
  Rdp.spend_gaussian single_equiv ~sigma:1. ~sensitivity:1.;
  checkf 1e-9 "rho adds exactly"
    (Rdp.epsilon single_equiv ~delta:1e-6)
    (Rdp.epsilon ten ~delta:1e-6);
  Alcotest.(check int) "events counted" 100 (Rdp.count ten)

let test_rdp_tighter_than_advanced () =
  (* 1000 Gaussian events at sigma = 20: RDP must beat Theorem 3.10. *)
  let sigma = 20. in
  let rdp = Rdp.create () in
  for _ = 1 to 1000 do
    Rdp.spend_gaussian rdp ~sigma ~sensitivity:1.
  done;
  let per_event_eps = Mechanisms.gaussian_sigma ~eps:1. ~delta:1e-9 ~sensitivity:1. /. sigma in
  let adv = Params.compose_advanced ~count:1000 ~slack:5e-7 (Params.create ~eps:per_event_eps ~delta:0.) in
  Alcotest.(check bool) "rdp < advanced" true (Rdp.epsilon rdp ~delta:1e-6 < adv.Params.eps)

let test_rdp_validation () =
  Alcotest.check_raises "orders > 1" (Invalid_argument "Rdp.create: orders must exceed 1")
    (fun () -> ignore (Rdp.create ~orders:[| 1. |] ()));
  let acc = Rdp.create () in
  Alcotest.check_raises "delta range" (Invalid_argument "Rdp.epsilon: delta must lie in (0, 1)")
    (fun () -> ignore (Rdp.epsilon acc ~delta:0.))

(* --- permute and flip --- *)

let test_permute_and_flip_prefers_max () =
  let rng = Rng.create ~seed:54 () in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Mechanisms.permute_and_flip ~eps:10. ~sensitivity:0.1 ~scores:[| 0.; 5.; 1. |] rng = 1
    then incr hits
  done;
  Alcotest.(check bool) "picks max almost surely" true (!hits > 9_990)

let test_permute_and_flip_uniform_at_tiny_eps () =
  let rng = Rng.create ~seed:55 () in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Mechanisms.permute_and_flip ~eps:1e-9 ~sensitivity:1. ~scores:[| 0.; 0.5; 1. |] rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "near uniform" true
        (Float.abs ((float_of_int c /. float_of_int n) -. (1. /. 3.)) < 0.02))
    counts

let test_permute_and_flip_dominates_exponential () =
  (* McKenna-Sheldon: P&F's expected score stochastically dominates the
     exponential mechanism's at equal (eps, sensitivity). Check empirically. *)
  let scores = [| 0.; 0.2; 0.4; 0.6; 0.8; 1. |] in
  let mean_score mech =
    let rng = Rng.create ~seed:56 () in
    let acc = ref 0. in
    let n = 50_000 in
    for _ = 1 to n do
      acc := !acc +. scores.(mech ~eps:1. ~sensitivity:0.5 ~scores rng)
    done;
    !acc /. float_of_int n
  in
  let pf = mean_score Mechanisms.permute_and_flip in
  let em = mean_score Mechanisms.exponential in
  Alcotest.(check bool)
    (Printf.sprintf "P&F %.4f >= EM %.4f" pf em)
    true
    (pf >= em -. 0.005)

(* --- accountant --- *)

let test_accountant_basic_total () =
  let a = Accountant.create () in
  Accountant.spend a (Params.create ~eps:0.1 ~delta:1e-8);
  Accountant.spend a (Params.create ~eps:0.2 ~delta:1e-8);
  let total = Accountant.total_basic a in
  checkf 1e-12 "eps" 0.3 total.Params.eps;
  checkf 1e-18 "delta" 2e-8 total.Params.delta;
  Alcotest.(check int) "count" 2 (Accountant.count a)

let test_accountant_advanced_total () =
  let a = Accountant.create () in
  for _ = 1 to 1000 do
    Accountant.spend a (Params.pure 0.01)
  done;
  let adv = Accountant.total_advanced a ~slack:1e-6 in
  let basic = Accountant.total_basic a in
  Alcotest.(check bool) "advanced < basic for many events" true
    (adv.Params.eps < basic.Params.eps)

let test_accountant_zcdp () =
  let a = Accountant.create () in
  for _ = 1 to 1000 do
    Accountant.spend a (Params.pure 0.01)
  done;
  (* rho = 1000 * 0.0001 / 2 = 0.05 *)
  checkf 1e-12 "rho" 0.05 (Accountant.rho a);
  let eps_zcdp = Accountant.total_zcdp a ~delta:1e-6 in
  let adv = (Accountant.total_advanced a ~slack:1e-6).Params.eps in
  Alcotest.(check bool) "zCDP tighter than advanced composition" true (eps_zcdp < adv)

let test_accountant_gaussian_rho () =
  let a = Accountant.create () in
  Accountant.spend_gaussian a ~sigma:2. ~sensitivity:1.;
  checkf 1e-12 "rho = s^2/(2 sigma^2)" 0.125 (Accountant.rho a)

(* --- numeric sparse --- *)

module Ns = Pmw_dp.Numeric_sparse

let test_numeric_sparse_answers () =
  let ns =
    Ns.create ~t_max:5 ~k:100 ~threshold:1.
      ~privacy:(Params.create ~eps:5. ~delta:1e-6)
      ~sensitivity:0.0005 ~rng:(Rng.create ~seed:57 ()) ()
  in
  (* clear gaps: below and above must classify correctly, and above answers
     must carry a value near the truth *)
  (match Ns.query ns 0.0 with
  | Some Ns.Below -> ()
  | Some (Ns.Above _) -> Alcotest.fail "low value answered Above"
  | None -> Alcotest.fail "halted early");
  (match Ns.query ns 2.0 with
  | Some (Ns.Above v) ->
      Alcotest.(check bool) (Printf.sprintf "released value %.3f near 2.0" v) true
        (Float.abs (v -. 2.0) < 0.2)
  | Some Ns.Below -> Alcotest.fail "high value answered Below"
  | None -> Alcotest.fail "halted early");
  Alcotest.(check int) "one top used" 1 (Ns.tops_used ns)

let test_numeric_sparse_halts () =
  let ns =
    Ns.create ~t_max:2 ~k:100 ~threshold:1.
      ~privacy:(Params.create ~eps:5. ~delta:1e-6)
      ~sensitivity:0.0005 ~rng:(Rng.create ~seed:58 ()) ()
  in
  ignore (Ns.query ns 5.);
  ignore (Ns.query ns 5.);
  Alcotest.(check bool) "halted after t_max aboves" true (Ns.halted ns);
  Alcotest.(check bool) "None afterwards" true (Ns.query ns 5. = None)

let test_numeric_sparse_validation () =
  Alcotest.check_raises "value fraction"
    (Invalid_argument "Numeric_sparse.create: value_fraction must lie in (0, 1)") (fun () ->
      ignore
        (Ns.create ~t_max:1 ~k:1 ~threshold:1.
           ~privacy:(Params.create ~eps:1. ~delta:1e-6)
           ~sensitivity:0.1 ~value_fraction:1.5
           ~rng:(Rng.create ~seed:59 ())
           ()))

(* --- audit --- *)

module Audit = Pmw_dp.Audit

let test_audit_sound_mechanism () =
  (* a correct Laplace mechanism must audit below its eps *)
  let eps_hat = Audit.laplace_counter_example () in
  Alcotest.(check bool) (Printf.sprintf "eps_hat %.3f <= 0.5 + slack" eps_hat) true
    (eps_hat <= 0.5 +. 0.15)

let test_audit_catches_broken_mechanism () =
  (* a "mechanism" that leaks the input deterministically must audit huge:
     with outcome sets disjoint, no outcome passes min_count on both sides,
     so instead make it leak with probability 1/2 *)
  let mechanism ~seed ~input =
    let rng = Rng.create ~seed () in
    if Rng.bool rng then (if input > 0.5 then "big" else "small") else "quiet"
  in
  let r = Audit.run ~trials:4000 ~mechanism ~input_a:0. ~input_b:1. () in
  (* "big"/"small" never co-occur with enough mass; "quiet" is balanced; the
     detector for this failure is the small number of comparable outcomes *)
  Alcotest.(check bool) "disjoint outcomes flagged by comparison count" true
    (r.Audit.outcomes_compared <= 1)

let test_audit_detects_undernoised () =
  (* Laplace at half the required scale must audit above the claimed eps. *)
  let claimed_eps = 0.5 in
  let mechanism ~seed ~input =
    let rng = Rng.create ~seed () in
    (* WRONG calibration: noise for eps = 4 while claiming eps = 0.5 *)
    let noisy = Mechanisms.laplace ~eps:4. ~sensitivity:1. input rng in
    if noisy >= 0.5 then "high" else "low"
  in
  let r = Audit.run ~trials:20_000 ~mechanism ~input_a:0. ~input_b:1. () in
  Alcotest.(check bool)
    (Printf.sprintf "eps_hat %.3f exposes the bug" r.Audit.eps_hat)
    true
    (r.Audit.eps_hat > claimed_eps +. 0.5)

let test_audit_validation () =
  Alcotest.check_raises "trials" (Invalid_argument "Audit.run: trials must be positive")
    (fun () ->
      ignore (Audit.run ~trials:0 ~mechanism:(fun ~seed:_ ~input:_ -> "x") ~input_a:0 ~input_b:1 ()))

(* --- qcheck --- *)

let qcheck_advanced_monotone_in_count =
  QCheck.Test.make ~name:"advanced composition monotone in count" ~count:100
    QCheck.(int_range 1 500)
    (fun t ->
      let p = Params.pure 0.01 in
      let a = Params.compose_advanced ~count:t ~slack:1e-6 p in
      let b = Params.compose_advanced ~count:(t + 1) ~slack:1e-6 p in
      b.Params.eps >= a.Params.eps)

let qcheck_split_within_budget =
  QCheck.Test.make ~name:"split_advanced composes within budget" ~count:100
    QCheck.(pair (int_range 1 1000) (float_range 0.1 5.))
    (fun (count, eps) ->
      let budget = Params.create ~eps ~delta:1e-6 in
      Params.check_advanced_split ~count ~budget ~per_call:(Params.split_advanced ~count budget))

let qcheck_laplace_preserves_mean =
  QCheck.Test.make ~name:"laplace mechanism unbiased" ~count:10
    QCheck.(float_range (-5.) 5.)
    (fun v ->
      let rng = Rng.create ~seed:53 () in
      let n = 20_000 in
      let acc = ref 0. in
      for _ = 1 to n do
        acc := !acc +. Mechanisms.laplace ~eps:1. ~sensitivity:1. v rng
      done;
      Float.abs ((!acc /. float_of_int n) -. v) < 0.1)

(* --- property-based privacy audits ---

   Definition 2.1 as a testable property: for EVERY pair of neighboring
   histograms the generators produce, the empirical epsilon lower bound
   ({!Audit.estimate_epsilon}) must stay at or below the accounted epsilon.
   Outcomes are binned coarsely (two to a handful of cells) so the
   frequency estimates are stable at the trial counts used here; the
   additive tolerances below cover the residual sampling noise of those
   estimates (a 3-sigma bound on the log-ratio of binomial proportions at
   the configured [trials] and [min_count]), NOT any privacy slack — a
   mechanism noised for eps' > eps + tolerance fails these deterministically
   (see [test_audit_catches_broken_mechanism] above). Both suites are
   seeded through [to_alcotest ~rand] in the registration below. *)

(* A histogram over a domain of [m <= 4] cells with small counts, plus one
   neighbor: the same histogram with one more record in one cell. *)
let gen_neighboring_histograms =
  QCheck.Gen.(
    let* m = int_range 2 4 in
    let* counts = array_size (return m) (int_bound 10) in
    let* cell = int_bound (m - 1) in
    let neighbor = Array.copy counts in
    neighbor.(cell) <- neighbor.(cell) + 1;
    return (counts, neighbor, cell))

let print_histograms (a, b, cell) =
  Printf.sprintf "a=[%s] b=[%s] cell=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int a)))
    (String.concat ";" (Array.to_list (Array.map string_of_int b)))
    cell

(* Laplace counting release on the changed cell, binned to the sign around
   the midpoint (2 outcomes, each with probability >= 0.2 at eps <= 1, so
   at 2000 trials the log-ratio noise is ~0.07 sd; tolerance = 0.25). *)
let qcheck_audit_laplace_neighboring =
  QCheck.Test.make ~name:"laplace audit: empirical eps <= accounted eps" ~count:200
    (QCheck.make ~print:print_histograms gen_neighboring_histograms)
    (fun (a, b, cell) ->
      let eps = 0.8 in
      let midpoint = float_of_int a.(cell) +. 0.5 in
      let mechanism ~seed ~input =
        let rng = Rng.create ~seed () in
        let noisy =
          Mechanisms.laplace ~eps ~sensitivity:1. (float_of_int input.(cell)) rng
        in
        if noisy >= midpoint then "high" else "low"
      in
      let eps_hat =
        Audit.estimate_epsilon ~trials:2_000 ~mechanism ~input_a:a ~input_b:b ()
      in
      if eps_hat <= eps +. 0.25 then true
      else QCheck.Test.fail_reportf "eps_hat %.3f > accounted %.3f (+0.25 tolerance)" eps_hat eps)

(* The sparse-vector transcript as the observable: feed the cell
   frequencies of each histogram as the query stream (sensitivity 1/n for
   neighboring data at fixed n) and audit the full ⊤/⊥/halt transcript.
   AboveThreshold's accounting is conservative, so the empirical bound
   sits well below eps; [min_count] keeps rare transcripts (noisy ratio
   estimates) out, and the tolerance again covers sampling noise only. *)
let qcheck_audit_sparse_vector_neighboring =
  QCheck.Test.make ~name:"sparse-vector audit: empirical eps <= accounted eps" ~count:200
    (QCheck.make ~print:print_histograms gen_neighboring_histograms)
    (fun (a, b, _) ->
      let eps = 1.0 in
      let n = 25. in
      let privacy = Params.create ~eps ~delta:1e-6 in
      let mechanism ~seed ~input =
        let rng = Rng.create ~seed () in
        let sv =
          Sv.create ~t_max:1 ~k:(Array.length input) ~threshold:0.2 ~privacy
            ~sensitivity:(1. /. n) ~rng ()
        in
        String.concat ""
          (Array.to_list
             (Array.map
                (fun count ->
                  match Sv.query sv (float_of_int count /. n) with
                  | Some Sv.Top -> "T"
                  | Some Sv.Bottom -> "B"
                  | None -> ".")
                input))
      in
      let eps_hat =
        Audit.estimate_epsilon ~trials:1_500 ~min_count:100 ~mechanism ~input_a:a ~input_b:b ()
      in
      if eps_hat <= eps +. 0.3 then true
      else QCheck.Test.fail_reportf "eps_hat %.3f > accounted %.3f (+0.3 tolerance)" eps_hat eps)

let () =
  Alcotest.run "pmw_dp"
    [
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "basic composition" `Quick test_basic_composition;
          Alcotest.test_case "thm 3.10 formula" `Quick test_advanced_composition_formula;
          Alcotest.test_case "advanced beats basic" `Quick test_advanced_beats_basic_for_many_calls;
          Alcotest.test_case "split round trip" `Quick test_split_advanced_round_trip;
          Alcotest.test_case "split basic" `Quick test_split_basic;
        ] );
      ( "mechanisms",
        [
          Alcotest.test_case "laplace scale" `Quick test_laplace_noise_scale;
          Alcotest.test_case "gaussian sigma" `Quick test_gaussian_sigma_formula;
          Alcotest.test_case "gaussian vector" `Quick test_gaussian_vector_dims;
          Alcotest.test_case "exponential distribution" `Quick test_exponential_mechanism_distribution;
          Alcotest.test_case "exponential sens=0" `Quick test_exponential_zero_sensitivity_uniform;
          Alcotest.test_case "report noisy max" `Quick test_report_noisy_max_prefers_max;
          Alcotest.test_case "randomized response" `Quick test_randomized_response_bias;
        ] );
      ( "sparse_vector",
        [
          Alcotest.test_case "accuracy on clear gaps" `Quick test_sv_accuracy_on_clear_gaps;
          Alcotest.test_case "halts after T tops" `Quick test_sv_halts_after_t_tops;
          Alcotest.test_case "stream length" `Quick test_sv_stream_length_bound;
          Alcotest.test_case "per-epoch eps" `Quick test_sv_per_epoch_eps;
          Alcotest.test_case "thm 3.1 bound shape" `Quick test_sv_theorem_3_1_bound_shape;
          Alcotest.test_case "validation" `Quick test_sv_validation;
        ] );
      ( "analytic_gaussian",
        [
          Alcotest.test_case "achieves delta, minimal" `Quick test_analytic_sigma_achieves_delta;
          Alcotest.test_case "beats classical" `Quick test_analytic_beats_classical;
          Alcotest.test_case "monotone" `Quick test_analytic_monotone;
          Alcotest.test_case "sensitivity scaling" `Quick test_analytic_scales_with_sensitivity;
        ] );
      ( "rdp",
        [
          Alcotest.test_case "gaussian closed form" `Quick test_rdp_gaussian_known_value;
          Alcotest.test_case "additive composition" `Quick test_rdp_composes_additively;
          Alcotest.test_case "tighter than Thm 3.10" `Quick test_rdp_tighter_than_advanced;
          Alcotest.test_case "validation" `Quick test_rdp_validation;
        ] );
      ( "permute_and_flip",
        [
          Alcotest.test_case "prefers max" `Quick test_permute_and_flip_prefers_max;
          Alcotest.test_case "uniform at tiny eps" `Quick test_permute_and_flip_uniform_at_tiny_eps;
          Alcotest.test_case "dominates exponential" `Quick test_permute_and_flip_dominates_exponential;
        ] );
      ( "accountant",
        [
          Alcotest.test_case "basic total" `Quick test_accountant_basic_total;
          Alcotest.test_case "advanced total" `Quick test_accountant_advanced_total;
          Alcotest.test_case "zcdp" `Quick test_accountant_zcdp;
          Alcotest.test_case "gaussian rho" `Quick test_accountant_gaussian_rho;
        ] );
      ( "numeric_sparse",
        [
          Alcotest.test_case "answers with values" `Quick test_numeric_sparse_answers;
          Alcotest.test_case "halts" `Quick test_numeric_sparse_halts;
          Alcotest.test_case "validation" `Quick test_numeric_sparse_validation;
        ] );
      ( "audit",
        [
          Alcotest.test_case "sound mechanism passes" `Quick test_audit_sound_mechanism;
          Alcotest.test_case "broken mechanism flagged" `Quick test_audit_catches_broken_mechanism;
          Alcotest.test_case "under-noised exposed" `Quick test_audit_detects_undernoised;
          Alcotest.test_case "validation" `Quick test_audit_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_advanced_monotone_in_count;
            qcheck_split_within_budget;
            qcheck_laplace_preserves_mean;
          ]
        @ [
            (* seeded: the audit tolerances are calibrated to these trial
               counts, so the case stream must be reproducible *)
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| 0xad17 |])
              qcheck_audit_laplace_neighboring;
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| 0xad25 |])
              qcheck_audit_sparse_vector_neighboring;
          ] );
    ]
